"""Elastic rank membership: crash-tolerant live re-layout.

The paper's access-sequence machinery makes any ``cyclic(k)`` layout
cheap to *plan*; this module makes the rank count ``p`` cheap to
*change* while a program is running.  A re-layout from ``p`` ranks to
``p'`` is exactly one more communication schedule -- the old layout is
the RHS, the new layout the LHS, and :mod:`repro.runtime.commsets` /
:mod:`repro.runtime.commsets2d` already compose the two because
transfers carry only rank numbers and flat local slots, never machine
identities.  What this module adds is the *protocol* that makes the
migration safe on a faulty machine:

* **Migration epochs.**  :func:`relayout` snapshots every rank into a
  host-side epoch checkpoint before anything moves.  The migration then
  copies the array into a *staging* arena under the new layout through
  :func:`repro.runtime.resilient.execute_copy_resilient` -- acknowledged
  delivery, retransmission, destination verification, checkpointed crash
  recovery -- on a machine grown to ``max(p, p')`` ranks.

* **All-or-nothing commit.**  Only after the exchange has verified every
  destination section does the staging arena replace the real one and
  the membership change commit (:meth:`Machine.retire_to` /
  :meth:`Machine.grow_to`).  A crash mid-migration that the resilient
  exchange cannot absorb rolls the *entire* machine back to the epoch
  checkpoint -- pre-migration layout, pre-migration values, staging
  freed, grown ranks kept for the retry -- and the migration retries up
  to :attr:`ElasticPolicy.max_attempts` times.  A half-migrated arena is
  never observable.

* **Degraded-mode shrink.**  When a rank dies and its state cannot be
  recovered (the crash outlived checkpoint retention), the default is
  the enriched :class:`~repro.runtime.resilient.ExchangeFailure` naming
  the retention window.  With :attr:`ElasticPolicy.degraded_shrink`
  enabled, an :class:`ElasticSession` instead rebuilds every registered
  array at ``p - 1`` from its own epoch snapshot (host-side stable
  storage, so the dead rank's shards are still readable), retires the
  top rank, and re-runs the statement -- completing bit-identically to a
  static ``p - 1`` run instead of failing.

See docs/FAULT_MODEL.md §6 for the fault-model contract and
``examples/elastic_lu_panel.py`` / ``examples/elastic_stencil.py`` for
the workload shapes.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from math import prod

import numpy as np

from ..distribution.array import AxisMap, DistributedArray
from ..distribution.dist import Distribution, ProcessorGrid
from ..distribution.section import RegularSection
from ..machine.checkpoint import Checkpoint, CheckpointStore
from ..machine.iface import Machine
from .exec import _dim_images, _is_lowest_owner, distribute
from .plancache import (
    cached_comm_schedule,
    cached_comm_schedule_2d,
    invalidate_for_p,
)
from .redistribute import RedistributionStats, stats_from_schedule
from .resilient import (
    ExchangeFailure,
    ResilienceReport,
    RetryPolicy,
    execute_copy_resilient,
)

__all__ = [
    "ElasticPolicy",
    "ElasticSession",
    "MigrationFailure",
    "MigrationReport",
    "image_from_snapshot",
    "make_relayout_target",
    "relayout",
]

# Monotonic migration-epoch ids: staging arenas and spans are labelled
# with them so overlapping migrations of different arrays can't collide.
_EPOCH_IDS = itertools.count()


class _RollbackStall(RuntimeError):
    """A rollback could not restore the epoch because ranks stayed dead
    past the revive budget (internal; surfaced as MigrationFailure)."""


class MigrationFailure(RuntimeError):
    """A re-layout could not be completed within its retry budget.

    The machine has been rolled back to the pre-migration epoch (layout,
    values, and membership); the partial :class:`MigrationReport` is
    attached as ``.report`` and the final
    :class:`~repro.runtime.resilient.ExchangeFailure` as ``__cause__``.
    """

    def __init__(self, message: str, report: "MigrationReport") -> None:
        super().__init__(message)
        self.report = report


@dataclass(frozen=True, slots=True)
class ElasticPolicy:
    """Knobs of the elastic runtime (docs/BACKENDS.md lists defaults).

    ``max_attempts`` bounds whole-migration retries (each retry is
    preceded by a full rollback to the migration epoch).  ``revive_wait``
    bounds how many barriers a rollback waits for crashed ranks to
    restart before giving up.  ``degraded_shrink`` opts in to the
    shrink-to-``p-1`` fallback when a rank's crash outlives checkpoint
    retention (sessions only; see :class:`ElasticSession`).
    ``retire_on_commit`` releases ranks beyond the new ``p`` once a
    shrink commits; disable it when other arrays still live on them and
    retire manually after migrating everything.
    ``invalidate_plans_on_commit`` drops the retired epoch's plan-cache
    entries (:func:`repro.runtime.plancache.invalidate_for_p`).
    """

    max_attempts: int = 3
    revive_wait: int = 16
    degraded_shrink: bool = False
    retire_on_commit: bool = True
    invalidate_plans_on_commit: bool = True

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ValueError(f"max_attempts must be >= 1, got {self.max_attempts}")
        if self.revive_wait < 0:
            raise ValueError(f"revive_wait must be >= 0, got {self.revive_wait}")


@dataclass
class MigrationReport:
    """What one :func:`relayout` cost and survived."""

    array: str
    old_p: int
    new_p: int
    epoch: int
    attempts: int = 0
    rollbacks: int = 0
    committed: bool = False
    supersteps: int = 0  # barriers across all attempts
    moved_bytes: int = 0  # remote payload volume of the winning attempt
    stats: RedistributionStats | None = None  # schedule cost figures
    exchange_reports: list[ResilienceReport] = field(default_factory=list)


def _full_sections(array: DistributedArray) -> tuple[RegularSection, ...]:
    return tuple(RegularSection(0, extent - 1, 1) for extent in array.shape)


def make_relayout_target(
    array: DistributedArray,
    new_dist: Distribution | tuple[Distribution | None, ...] | None,
    new_p: int,
    grid_shape: tuple[int, ...] | None = None,
    name: str | None = None,
) -> DistributedArray:
    """The descriptor ``array`` migrates *to*: same shape and alignments,
    new processor grid (``grid_shape`` or ``(new_p,)``), and optionally
    new per-dimension distribution formats.

    ``new_dist`` may be ``None`` (keep every dimension's format -- a pure
    membership change), a single :class:`Distribution` (applied to every
    partitioned dimension), or one entry per dimension with ``None``
    meaning "keep".  Undistributed (collapsed/replicated) dimensions
    always keep their format.
    """
    if new_p < 1:
        raise ValueError(f"need at least one rank, got new_p={new_p}")
    if grid_shape is None:
        if array.grid.rank != 1:
            raise ValueError(
                f"{array.name} lives on a {array.grid.rank}-D grid; pass "
                "grid_shape to re-layout it"
            )
        grid_shape = (new_p,)
    if prod(grid_shape) != new_p:
        raise ValueError(f"grid_shape {grid_shape} does not multiply to {new_p}")
    if isinstance(new_dist, Distribution) or new_dist is None:
        per_dim: tuple[Distribution | None, ...] = (new_dist,) * array.rank
    else:
        per_dim = tuple(new_dist)
        if len(per_dim) != array.rank:
            raise ValueError(
                f"need one distribution per dimension ({array.rank}), "
                f"got {len(per_dim)}"
            )
    grid = ProcessorGrid(f"{array.grid.name}@p{new_p}", tuple(grid_shape))
    axis_maps = []
    for am, dist in zip(array.axis_maps, per_dim):
        if dist is None or not am.distribution.partitions:
            dist = am.distribution
        axis_maps.append(
            AxisMap(
                dist,
                am.alignment,
                grid_axis=am.grid_axis,
                template_extent=am.template_extent,
            )
        )
    return DistributedArray(
        name if name is not None else array.name,
        array.shape,
        grid,
        tuple(axis_maps),
    )


def image_from_snapshot(
    checkpoint: Checkpoint, array: DistributedArray
) -> np.ndarray:
    """Reassemble ``array``'s host image from a machine checkpoint --
    :func:`repro.runtime.exec.collect`, but reading checksum-verified
    snapshot arenas instead of live rank memories.

    This is what makes degraded-mode shrink possible at all: the epoch
    checkpoint is host-side stable storage, so a crashed rank's shards
    are still readable here even though its volatile memory is gone.
    """
    out: np.ndarray | None = None
    for rank in range(array.grid.size):
        if not _is_lowest_owner(array, rank):
            continue
        snap = checkpoint.snapshots.get(rank)
        if snap is None:
            raise KeyError(
                f"checkpoint at superstep {checkpoint.superstep} does not "
                f"cover rank {rank}"
            )
        values = snap.arena_values(array.name)
        if values is None:
            raise KeyError(
                f"rank {rank}'s snapshot carries no arena {array.name!r}"
            )
        if out is None:
            out = np.zeros(array.shape, dtype=values.dtype)
        dims = _dim_images(array, rank)
        local = values.reshape(array.local_shape(rank))
        out[np.ix_(*[idx for idx, _ in dims])] = local[
            np.ix_(*[slots for _, slots in dims])
        ]
    assert out is not None  # grids are non-empty
    return out


def _await_all_alive(vm: Machine, budget: int) -> bool:
    """Cross up to ``budget`` idle barriers waiting for every dead rank
    to restart (the oracle revives after its downtime; the mp backend
    respawns).  True when the machine is all-alive."""
    for _ in range(budget):
        if not vm.dead_ranks:
            return True
        vm.run(_idle)
    return not vm.dead_ranks


def _idle(ctx):
    return None


def _source_dtype(vm: Machine, array: DistributedArray):
    for rank in range(array.grid.size):
        proc = vm.processors[rank]
        if proc.alive and proc.has_memory(array.name):
            return proc.memory(array.name).dtype
    return np.float64


def relayout(
    vm: Machine,
    array: DistributedArray,
    new_dist: Distribution | tuple[Distribution | None, ...] | None = None,
    new_p: int | None = None,
    *,
    checkpoints: CheckpointStore | None = None,
    policy: ElasticPolicy | None = None,
    retry: RetryPolicy | None = None,
    auditor=None,
    grid_shape: tuple[int, ...] | None = None,
    flight_dir: str = "fault-reports",
) -> tuple[DistributedArray, MigrationReport]:
    """Migrate ``array`` to a new distribution and/or rank count, live.

    Returns ``(new_array, report)`` where ``new_array`` is the committed
    descriptor (same name, new grid/layout) whose shards live on ranks
    ``0..new_p-1``.  The migration is *planned* (one comm schedule from
    the plan cache), *resilient* (executed through
    :func:`~repro.runtime.resilient.execute_copy_resilient` with the
    migration-epoch checkpoint as the rollback point), and *atomic*: on
    success the staging arena replaces the real one and membership
    commits; on failure the machine is rolled back to the pre-migration
    epoch and :class:`MigrationFailure` is raised -- never a
    half-migrated arena.

    ``new_p`` defaults to the current grid size (pure redistribution).
    Growing spawns ranks (:meth:`Machine.grow_to`) before the exchange;
    shrinking retires them (:meth:`Machine.retire_to`) only after commit
    (and only when ``policy.retire_on_commit``; keep them when other
    arrays still live there and retire manually).
    """
    if policy is None:
        policy = ElasticPolicy()
    if checkpoints is None:
        checkpoints = CheckpointStore()
    old_p = array.grid.size
    if new_p is None:
        new_p = old_p
    if array.rank > 2:
        raise ValueError(
            f"{array.name} is rank-{array.rank}; re-layout supports 1-D "
            "and 2-D arrays"
        )
    epoch = next(_EPOCH_IDS)
    target = make_relayout_target(array, new_dist, new_p, grid_shape)
    staging = make_relayout_target(
        array, new_dist, new_p, grid_shape, name=f"{array.name}@mig{epoch}"
    )
    report = MigrationReport(array.name, old_p, new_p, epoch)
    obs = vm.obs
    dtype = _source_dtype(vm, array)
    pre_p = vm.p

    with obs.span("migration", array=array.name, old_p=old_p, new_p=new_p,
                  epoch=epoch):
        obs.inc("elastic.migrations")
        if not _await_all_alive(vm, policy.revive_wait):
            raise MigrationFailure(
                f"cannot start migration of {array.name}: ranks "
                f"{list(vm.dead_ranks)} still dead after "
                f"{policy.revive_wait} barriers",
                report,
            )
        # The migration epoch: a host-side snapshot of every rank, held
        # by reference for the whole migration so the exchange's own
        # rolling checkpoints can never evict the rollback point.
        epoch_ckpt = checkpoints.save(vm)
        if max(old_p, new_p) > vm.p:
            vm.grow_to(max(old_p, new_p))

        secs_t = _full_sections(target)
        secs_a = _full_sections(array)
        if array.rank == 1:
            schedule = cached_comm_schedule(staging, secs_t[0], array, secs_a[0])
        else:
            schedule = cached_comm_schedule_2d(staging, secs_t, array, secs_a)
        report.stats = stats_from_schedule(schedule)
        report.moved_bytes = report.stats.remote_elements * dtype.itemsize

        last_failure: ExchangeFailure | None = None
        while report.attempts < policy.max_attempts:
            report.attempts += 1
            obs.inc("elastic.migration_attempts")
            for rank in range(new_p):
                vm.processors[rank].allocate(
                    staging.name, staging.local_size(rank), dtype=dtype
                )
            try:
                xreport = execute_copy_resilient(
                    vm, staging, secs_t[0], array, secs_a[0],
                    schedule=schedule, policy=retry, checkpoints=checkpoints,
                    auditor=auditor, flight_dir=flight_dir,
                )
                report.exchange_reports.append(xreport)
                report.supersteps += xreport.supersteps
                break
            except ExchangeFailure as exc:
                last_failure = exc
                report.exchange_reports.append(exc.report)
                report.supersteps += exc.report.supersteps
                report.rollbacks += 1
                obs.inc("elastic.rollbacks")
                try:
                    rolled = _rollback(vm, staging, epoch_ckpt, checkpoints, policy)
                except _RollbackStall as stall:
                    # Ranks stayed dead past the revive budget: abort.
                    # Their pre-migration state is still in the epoch
                    # checkpoint (host-side), so a session-level policy
                    # can recover or shrink; we cannot retry here.
                    if vm.p > pre_p:
                        vm.retire_to(pre_p)
                    raise MigrationFailure(
                        f"migration of {array.name} rolled back but "
                        f"{stall}; the epoch checkpoint (superstep "
                        f"{epoch_ckpt.superstep}) still holds every "
                        "rank's pre-migration state",
                        report,
                    ) from exc
                obs.instant(
                    "migration_rollback", array=array.name, epoch=epoch,
                    attempt=report.attempts, restored_ranks=rolled,
                )
                if report.attempts >= policy.max_attempts:
                    if vm.p > pre_p:
                        vm.retire_to(pre_p)
                    raise MigrationFailure(
                        f"migration of {array.name} ({old_p} -> {new_p} "
                        f"ranks) failed after {report.attempts} attempt(s); "
                        "machine rolled back to the pre-migration epoch "
                        f"(superstep {epoch_ckpt.superstep})",
                        report,
                    ) from exc
        else:  # pragma: no cover - loop always breaks or raises
            raise MigrationFailure("migration retry loop exited", report) from last_failure

        # Commit: staging becomes the real arena, then membership.  This
        # runs host-side between barriers, so no fault point can fire
        # mid-commit -- the epoch either migrated fully or not at all.
        for rank in range(new_p):
            proc = vm.processors[rank]
            values = np.array(proc.memory(staging.name), copy=True)
            proc.free(staging.name)
            proc.allocate(array.name, values.size, dtype=values.dtype)
            if values.size:
                proc.memory(array.name)[:] = values
        if policy.retire_on_commit and new_p < vm.p:
            vm.retire_to(new_p)
        if policy.invalidate_plans_on_commit and new_p != old_p:
            invalidate_for_p(old_p)
        # Refresh the store: the newest retained checkpoint should
        # describe the *committed* state, not a mid-migration one that
        # still carries staging arenas.
        checkpoints.save(vm)
        report.committed = True
        obs.inc("elastic.commits")
        obs.instant(
            "migration_commit", array=array.name, epoch=epoch,
            old_p=old_p, new_p=new_p, attempts=report.attempts,
        )
    return target, report


def _free_staging(vm: Machine, staging: DistributedArray) -> None:
    for rank in range(vm.p):
        proc = vm.processors[rank]
        if proc.alive and proc.has_memory(staging.name):
            proc.free(staging.name)


def _rollback(
    vm: Machine,
    staging: DistributedArray,
    epoch_ckpt: Checkpoint,
    checkpoints: CheckpointStore,
    policy: ElasticPolicy,
) -> int:
    """Rewind the whole machine to the migration epoch: staging arenas
    freed, every snapshotted rank restored to its pre-migration arenas,
    grown ranks left in place (empty) for the retry.  Returns the number
    of ranks restored; raises :class:`MigrationFailure` only from the
    caller (which owns the report)."""
    _free_staging(vm, staging)
    if not _await_all_alive(vm, policy.revive_wait):
        # Ranks that revived during the wait came back wiped; whoever is
        # alive has already had its staging arena freed above.
        _free_staging(vm, staging)
        raise _RollbackStall(
            f"ranks {list(vm.dead_ranks)} still dead after "
            f"{policy.revive_wait} barriers"
        )
    _free_staging(vm, staging)
    restored = 0
    for rank in sorted(epoch_ckpt.snapshots):
        checkpoints.restore_rank(vm, rank, epoch_ckpt)
        restored += 1
    return restored


class ElasticSession:
    """A program's distributed arrays tracked across membership epochs.

    The session owns the pieces a long-running elastic program needs in
    one place: the machine, a checkpoint store, the current descriptor
    of every registered array (re-layouts swap them in place), and the
    per-statement *epoch snapshot* that backs degraded-mode shrink.

    >>> session = ElasticSession(vm, policy=ElasticPolicy(degraded_shrink=True))
    >>> session.register(a, host_a); session.register(b, host_b)
    >>> session.copy("A", sec_a, "B", sec_b)   # resilient, shrink-on-loss
    >>> session.relayout("A", CyclicK(4), new_p=6)  # live migration
    """

    def __init__(
        self,
        vm: Machine,
        *,
        checkpoints: CheckpointStore | None = None,
        policy: ElasticPolicy | None = None,
        retry: RetryPolicy | None = None,
        auditor=None,
        flight_dir: str = "fault-reports",
    ) -> None:
        self.vm = vm
        self.checkpoints = checkpoints if checkpoints is not None else CheckpointStore()
        self.policy = policy if policy is not None else ElasticPolicy()
        self.retry = retry
        self.auditor = auditor
        self.flight_dir = flight_dir
        self.arrays: dict[str, DistributedArray] = {}
        self.epoch_checkpoint: Checkpoint | None = None
        self.migrations: list[MigrationReport] = []
        #: (dead_rank, old_p, new_p) per degraded shrink, in order.
        self.degraded_shrinks: list[tuple[int, int, int]] = []

    @property
    def p(self) -> int:
        return self.vm.p

    def register(
        self, array: DistributedArray, values: np.ndarray | None = None
    ) -> DistributedArray:
        """Track ``array`` (optionally scattering ``values`` onto the
        machine first).  Registered arrays follow membership changes:
        re-layouts and degraded shrinks replace their descriptors."""
        if values is not None:
            distribute(self.vm, array, values)
        self.arrays[array.name] = array
        return array

    def relayout(
        self,
        name: str,
        new_dist: Distribution | tuple[Distribution | None, ...] | None = None,
        new_p: int | None = None,
        grid_shape: tuple[int, ...] | None = None,
    ) -> DistributedArray:
        """Live-migrate one registered array (see :func:`relayout`).

        With several registered arrays, membership only shrinks once the
        *last* one has left the retiring ranks: the session passes
        ``retire_on_commit`` only when no other registered array still
        has shards there.
        """
        array = self.arrays[name]
        others_on_old = any(
            other.grid.size > (new_p if new_p is not None else array.grid.size)
            for other_name, other in self.arrays.items()
            if other_name != name
        )
        policy = self.policy
        if others_on_old and policy.retire_on_commit:
            from dataclasses import replace

            policy = replace(policy, retire_on_commit=False)
        new_array, report = relayout(
            self.vm, array, new_dist, new_p,
            checkpoints=self.checkpoints, policy=policy, retry=self.retry,
            auditor=self.auditor, grid_shape=grid_shape,
            flight_dir=self.flight_dir,
        )
        self.arrays[name] = new_array
        self.migrations.append(report)
        return new_array

    def copy(
        self,
        dst: str,
        sec_dst: RegularSection,
        src: str,
        sec_src: RegularSection,
    ) -> ResilienceReport:
        """Resilient ``DST(sec_dst) = SRC(sec_src)`` with the degraded
        fallback: when a rank's crash is unrecoverable (e.g. it outlived
        checkpoint retention) and :attr:`ElasticPolicy.degraded_shrink`
        is on, shrink every registered array to ``p - 1`` from this
        statement's epoch snapshot and re-run -- bit-identical to the
        static ``p - 1`` execution.  With the policy off, the enriched
        :class:`~repro.runtime.resilient.ExchangeFailure` propagates.
        """
        self.epoch_checkpoint = self.checkpoints.save(self.vm)
        try:
            return self._copy_once(dst, sec_dst, src, sec_src)
        except ExchangeFailure as exc:
            if exc.report.unrecoverable is None or not self.policy.degraded_shrink:
                raise
            dead_rank, _step = exc.report.unrecoverable
            self.shrink_degraded(dead_rank)
            return self._copy_once(dst, sec_dst, src, sec_src)

    def _copy_once(self, dst, sec_dst, src, sec_src) -> ResilienceReport:
        return execute_copy_resilient(
            self.vm, self.arrays[dst], sec_dst, self.arrays[src], sec_src,
            policy=self.retry, checkpoints=self.checkpoints,
            auditor=self.auditor, flight_dir=self.flight_dir,
        )

    def shrink_degraded(self, dead_rank: int) -> int:
        """Shrink membership to ``p - 1`` from the epoch snapshot: every
        registered array is reassembled host-side (the snapshot still
        holds the dead rank's shards), the top rank retires, and the
        arrays are re-scattered under their shrunk layouts.  Returns the
        new ``p``."""
        epoch = self.epoch_checkpoint
        if epoch is None:
            raise RuntimeError(
                "no epoch snapshot to shrink from; degraded shrink is only "
                "available inside session statements (see ElasticSession.copy)"
            )
        old_p = self.vm.p
        new_p = old_p - 1
        if new_p < 1:
            raise RuntimeError(f"cannot shrink below one rank (p={old_p})")
        for array in self.arrays.values():
            if array.grid.rank != 1:
                raise RuntimeError(
                    f"degraded shrink supports 1-D grids; {array.name} lives "
                    f"on {array.grid.shape}"
                )
        obs = self.vm.obs
        with obs.span("degraded_shrink", dead_rank=dead_rank,
                      old_p=old_p, new_p=new_p):
            # Reassemble first -- pure host-side reads of the snapshot.
            images = {
                name: image_from_snapshot(epoch, array)
                for name, array in self.arrays.items()
            }
            # Surviving ranks must be alive to take their new shards
            # (the dead rank revives wiped unless it *is* the top rank,
            # which retires instead).
            if dead_rank < new_p and not _await_all_alive(
                self.vm, self.policy.revive_wait
            ):
                raise RuntimeError(
                    f"degraded shrink stalled: ranks {list(self.vm.dead_ranks)} "
                    f"still dead after {self.policy.revive_wait} barriers"
                )
            self.vm.retire_to(new_p)
            invalidate_for_p(old_p)
            for name, array in list(self.arrays.items()):
                shrunk = make_relayout_target(array, None, new_p)
                distribute(self.vm, shrunk, images[name])
                self.arrays[name] = shrunk
            self.checkpoints.save(self.vm)
        self.degraded_shrinks.append((dead_rank, old_p, new_p))
        obs.inc("elastic.degraded_shrinks")
        obs.instant(
            "degraded_shrink", dead_rank=dead_rank, old_p=old_p, new_p=new_p
        )
        return new_p
