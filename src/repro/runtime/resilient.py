"""Resilient array exchanges over an unreliable interconnect.

:func:`repro.runtime.exec.execute_copy` assumes the fabric is perfect:
every packed payload arrives exactly once, intact, one superstep after
it was sent.  Under a :class:`~repro.machine.faults.FaultPlan` none of
that holds -- messages can be dropped, duplicated, reordered, corrupted,
or delayed by rank stalls.  This module wraps the copy/redistribution
executors in an acknowledged-delivery protocol built from ordinary BSP
supersteps (see docs/FAULT_MODEL.md for the superstep diagram):

* every transfer travels as a sequence-numbered :class:`Packet` whose
  CRC-32 covers header *and* payload, so any single corrupted field is
  detected at the receiver;
* receivers apply packets **idempotently** (a transfer id is applied at
  most once -- duplicates are counted and discarded) and answer with
  cumulative, checksummed ACKs each round, plus immediate NACKs for
  packets that arrive corrupted;
* senders retransmit any unacknowledged transfer after a configurable
  timeout measured in supersteps, up to a bounded number of retries,
  from the payload staged at pack time (so Fortran read-before-write
  semantics survive retransmission even for aliased self-copies);
* after convergence a **self-verification** pass checksums every
  destination section against the schedule-predicted checksum of the
  staged payload, so silent data loss is a hard :class:`ExchangeFailure`
  rather than a wrong answer.

The result is the property the tests sweep over fault seeds: a resilient
exchange either produces results bit-identical to the fault-free
execution or raises :class:`ExchangeFailure` -- never silently wrong
data.  At zero fault rate the protocol costs one extra superstep over
:func:`execute_copy` and reports zero retries.
"""

from __future__ import annotations

import itertools
import struct
import zlib
from dataclasses import dataclass, field

import numpy as np

from ..distribution.array import DistributedArray
from ..distribution.section import RegularSection
from ..machine.vm import VirtualMachine
from .commsets import CommSchedule, Transfer, compute_comm_schedule
from .exec import _check_vm, as_index
from .redistribute import RedistributionStats, stats_from_schedule

__all__ = [
    "ExchangeFailure",
    "Packet",
    "ResilienceReport",
    "RetryPolicy",
    "execute_copy_resilient",
    "redistribute_resilient",
]

# Unique per-exchange channel ids: leftovers from an aborted or
# still-draining exchange can never be confused with a later one.
_EXCHANGE_IDS = itertools.count()

# Nominal per-packet header charge for traffic accounting (tid, seq,
# checksum, tag overhead).
_HEADER_BYTES = 32


class ExchangeFailure(RuntimeError):
    """A resilient exchange could not be completed *and verified*.

    Raised when retries are exhausted, the superstep budget runs out, or
    destination verification detects silent data loss.  The partial
    :class:`ResilienceReport` is attached as ``.report``.
    """

    def __init__(self, message: str, report: "ResilienceReport") -> None:
        super().__init__(message)
        self.report = report


@dataclass(frozen=True, slots=True)
class RetryPolicy:
    """Bounds of the acknowledged-delivery protocol.

    ``timeout`` is measured in supersteps since a transfer was last
    transmitted; 2 is the minimum that does not spuriously retransmit on
    a healthy network (data crosses one barrier, the ACK a second).
    ``max_retries`` bounds retransmissions per transfer;
    ``max_supersteps`` bounds the whole exchange.
    """

    max_retries: int = 8
    timeout: int = 2
    max_supersteps: int = 64

    def __post_init__(self) -> None:
        if self.max_retries < 0:
            raise ValueError(f"max_retries must be >= 0, got {self.max_retries}")
        if self.timeout < 1:
            raise ValueError(f"timeout must be >= 1 superstep, got {self.timeout}")
        if self.max_supersteps < 2:
            raise ValueError(
                f"max_supersteps must be >= 2, got {self.max_supersteps}"
            )


@dataclass(frozen=True, slots=True)
class Packet:
    """One transfer transmission: header + payload, self-checksummed."""

    tid: int  # transfer id (index into the schedule's transfer list)
    seq: int  # transmission number: 0 first send, then 1, 2, ... retries
    checksum: int  # CRC-32 over header and payload bytes
    payload: np.ndarray

    @property
    def nbytes(self) -> int:
        return int(self.payload.nbytes) + _HEADER_BYTES

    def valid(self) -> bool:
        try:
            return self.checksum == _packet_checksum(self.tid, self.seq, self.payload)
        except Exception:
            return False


def _packet_checksum(tid: int, seq: int, payload: np.ndarray) -> int:
    header = struct.pack("<qq", tid, seq) + payload.dtype.str.encode()
    crc = zlib.crc32(header)
    return zlib.crc32(np.ascontiguousarray(payload).tobytes(), crc)


def _values_checksum(values: np.ndarray) -> int:
    return zlib.crc32(np.ascontiguousarray(values).tobytes())


def _ack(tids: tuple[int, ...]) -> tuple:
    return ("ack", tids, zlib.crc32(repr(tids).encode()))


def _nack(tid: int) -> tuple:
    return ("nack", tid, zlib.crc32(repr(tid).encode()))


def _valid_control(payload, kind: str) -> bool:
    """Checksummed control messages: corrupted ACK/NACKs are discarded
    rather than poisoning sender bookkeeping."""
    return (
        isinstance(payload, tuple)
        and len(payload) == 3
        and payload[0] == kind
        and payload[2] == zlib.crc32(repr(payload[1]).encode())
    )


@dataclass
class ResilienceReport:
    """What an acknowledged exchange cost and detected."""

    transfers: int  # remote transfers in the schedule
    local_transfers: int
    supersteps: int = 0  # barriers this exchange consumed
    retries: int = 0  # retransmissions (beyond each first send)
    retransmitted_bytes: int = 0
    detected_corruptions: int = 0  # checksum-failed packets at receivers
    duplicates_ignored: int = 0
    nacks_sent: int = 0
    converged: bool = False
    verified: bool = False
    schedule: CommSchedule | None = field(default=None, repr=False)

    @property
    def extra_supersteps(self) -> int:
        """Overhead versus the 2-superstep fault-free ``execute_copy``."""
        return self.supersteps - 2


@dataclass
class _Outbound:
    """Sender-side bookkeeping for one remote transfer."""

    transfer: Transfer
    payload: np.ndarray
    last_sent: int = 0  # protocol round of the latest transmission
    sends: int = 1
    acked: bool = False
    nacked: bool = False
    exhausted: bool = False


def execute_copy_resilient(
    vm: VirtualMachine,
    a: DistributedArray,
    sec_a: RegularSection,
    b: DistributedArray,
    sec_b: RegularSection,
    schedule: CommSchedule | None = None,
    policy: RetryPolicy | None = None,
) -> ResilienceReport:
    """Run ``A(sec_a) = B(sec_b)`` tolerating network faults.

    Same semantics as :func:`repro.runtime.exec.execute_copy` (Fortran
    read-before-write, precomputed-schedule reuse) but every remote
    transfer is acknowledged, retransmitted on loss, rejected on
    corruption, applied idempotently on duplication, and the destination
    sections are verified against schedule-predicted checksums before
    returning.  Either the copy completes bit-identical to the fault-free
    execution and a :class:`ResilienceReport` is returned, or
    :class:`ExchangeFailure` is raised.
    """
    _check_vm(vm, a)
    _check_vm(vm, b)
    if policy is None:
        policy = RetryPolicy()
    if schedule is None:
        schedule = compute_comm_schedule(a, sec_a, b, sec_b)

    xid = next(_EXCHANGE_IDS)
    data_tag = ("rxd", xid)
    ack_tag = ("rxa", xid)
    nack_tag = ("rxn", xid)
    all_tags = (data_tag, ack_tag, nack_tag)

    transfers = schedule.transfers
    report = ResilienceReport(
        transfers=len(transfers),
        local_transfers=len(schedule.locals_),
        schedule=schedule,
    )

    # Host-side protocol state, partitioned per rank (each node function
    # only touches its own rank's slice -- the SPMD discipline).
    outbox: list[dict[int, _Outbound]] = [dict() for _ in range(vm.p)]
    expected: list[dict[int, Transfer]] = [dict() for _ in range(vm.p)]
    applied: list[set[int]] = [set() for _ in range(vm.p)]
    staged_locals: list[list[tuple[Transfer, np.ndarray]]] = [
        [] for _ in range(vm.p)
    ]
    for tid, tr in enumerate(transfers):
        expected[tr.dest][tid] = tr

    # ------------------------------------------------------------------
    # Superstep 1: pack.  Everything is read (remote payloads staged in
    # the outbox, local payloads staged) before any element is written,
    # and retransmissions reuse the staged copies -- so aliased
    # self-copies stay correct no matter how often packets are resent.
    # ------------------------------------------------------------------

    def pack_phase(ctx):
        src_mem = ctx.memory(b.name)
        dst_mem = ctx.memory(a.name)
        for tid, tr in enumerate(transfers):
            if tr.source != ctx.rank:
                continue
            payload = src_mem[as_index(tr.src_slots)].copy()
            outbox[ctx.rank][tid] = _Outbound(tr, payload)
            ctx.send(tr.dest, data_tag, Packet(tid, 0, _packet_checksum(tid, 0, payload), payload))
        staged = [
            (tr, src_mem[as_index(tr.src_slots)].copy())
            for tr in schedule.locals_
            if tr.source == ctx.rank
        ]
        staged_locals[ctx.rank] = staged
        for tr, values in staged:
            dst_mem[as_index(tr.dst_slots)] = values

    vm.run(pack_phase)
    report.supersteps += 1

    # ------------------------------------------------------------------
    # Protocol rounds: receive/apply/ACK + retransmit, one superstep
    # each, until every expected transfer has been applied.
    # ------------------------------------------------------------------

    def protocol_round(round_no: int):
        def step(ctx):
            rank = ctx.rank
            # Sender role: fold in ACK/NACK traffic (checksummed; a
            # corrupted control message is discarded, the timeout covers).
            for _, payload in ctx.drain(ack_tag):
                if _valid_control(payload, "ack"):
                    for tid in payload[1]:
                        ob = outbox[rank].get(tid)
                        if ob is not None:
                            ob.acked = True
            for _, payload in ctx.drain(nack_tag):
                if _valid_control(payload, "nack"):
                    ob = outbox[rank].get(payload[1])
                    if ob is not None and not ob.acked:
                        ob.nacked = True

            # Receiver role: validate, apply idempotently, NACK corruption.
            dst_mem = ctx.memory(a.name) if expected[rank] else None
            for source, payload in ctx.drain(data_tag):
                if not isinstance(payload, Packet) or not payload.valid():
                    report.detected_corruptions += 1
                    tid = getattr(payload, "tid", None)
                    if isinstance(tid, int) and tid in expected[rank]:
                        ctx.send(source, nack_tag, _nack(tid))
                        report.nacks_sent += 1
                    continue
                tr = expected[rank].get(payload.tid)
                if tr is None or tr.source != source:
                    # A checksum-consistent packet for a transfer this rank
                    # does not expect -- only reachable through tag/routing
                    # corruption; drop it.
                    report.detected_corruptions += 1
                    continue
                if payload.tid in applied[rank]:
                    report.duplicates_ignored += 1
                    continue
                dst_mem[as_index(tr.dst_slots)] = payload.payload
                applied[rank].add(payload.tid)

            # Receiver role: cumulative ACKs, re-sent every round so a
            # dropped ACK is repaired by the next one.
            by_source: dict[int, list[int]] = {}
            for tid in applied[rank]:
                by_source.setdefault(expected[rank][tid].source, []).append(tid)
            for source, tids in by_source.items():
                ctx.send(source, ack_tag, _ack(tuple(sorted(tids))))

            # Sender role: retransmit overdue or NACKed transfers.
            for tid, ob in outbox[rank].items():
                if ob.acked or ob.exhausted:
                    continue
                if not ob.nacked and round_no - ob.last_sent < policy.timeout:
                    continue
                if ob.sends > policy.max_retries:
                    ob.exhausted = True
                    continue
                seq = ob.sends
                ctx.send(
                    ob.transfer.dest,
                    data_tag,
                    Packet(tid, seq, _packet_checksum(tid, seq, ob.payload), ob.payload),
                )
                ob.sends += 1
                ob.last_sent = round_no
                ob.nacked = False
                report.retries += 1
                report.retransmitted_bytes += int(ob.payload.nbytes) + _HEADER_BYTES

        return step

    def data_converged() -> bool:
        return all(
            set(expected[rank]) <= applied[rank] for rank in range(vm.p)
        )

    round_no = 0
    while not data_converged():
        if report.supersteps >= policy.max_supersteps:
            raise ExchangeFailure(
                f"exchange did not converge within {policy.max_supersteps} "
                f"supersteps ({_missing_summary(expected, applied, vm.p)})",
                report,
            )
        if _all_exhausted(outbox, expected, applied, vm.p) and not vm.network.outstanding(all_tags):
            raise ExchangeFailure(
                "retries exhausted with transfers still undelivered "
                f"({_missing_summary(expected, applied, vm.p)})",
                report,
            )
        round_no += 1
        vm.run(protocol_round(round_no))
        report.supersteps += 1
    report.converged = True

    # ------------------------------------------------------------------
    # Cleanup: drain in-flight leftovers (late duplicates, final ACKs,
    # stalled stragglers) so the exchange leaves the network idle.  The
    # tags are exchange-unique, so even a straggler the fault plan pins
    # past the budget cannot interfere with later exchanges.
    # ------------------------------------------------------------------

    def cleanup(ctx):
        dups = sum(1 for _ in ctx.drain(data_tag))
        report.duplicates_ignored += dups
        ctx.drain(ack_tag)
        ctx.drain(nack_tag)

    while vm.network.outstanding(all_tags) and report.supersteps < policy.max_supersteps:
        vm.run(cleanup)
        report.supersteps += 1

    # ------------------------------------------------------------------
    # Self-verification: every destination section must checksum to what
    # the schedule predicted at pack time.  Catches silent loss that the
    # per-packet machinery somehow missed -- the difference between a
    # wrong answer and a hard error.
    # ------------------------------------------------------------------

    failures = []
    for rank in range(vm.p):
        dst_mem = vm.processors[rank].memory(a.name)
        checks = [
            (tid, expected[rank][tid], outbox[expected[rank][tid].source][tid].payload)
            for tid in expected[rank]
        ]
        checks += [(None, tr, values) for tr, values in staged_locals[rank]]
        for tid, tr, payload in checks:
            predicted = _values_checksum(payload.astype(dst_mem.dtype, copy=False))
            actual = _values_checksum(dst_mem[as_index(tr.dst_slots)])
            if predicted != actual:
                failures.append((rank, tid, tr.source))
    if failures:
        raise ExchangeFailure(
            f"destination verification failed for {len(failures)} transfer(s) "
            f"(rank, tid, source): {failures[:5]} -- silent data loss detected",
            report,
        )
    report.verified = True
    return report


def _all_exhausted(outbox, expected, applied, p: int) -> bool:
    """True when every still-missing transfer's sender has given up."""
    for rank in range(p):
        for tid in set(expected[rank]) - applied[rank]:
            ob = outbox[expected[rank][tid].source].get(tid)
            if ob is not None and not ob.exhausted:
                return False
    return True


def _missing_summary(expected, applied, p: int) -> str:
    missing = {
        rank: sorted(set(expected[rank]) - applied[rank])
        for rank in range(p)
        if set(expected[rank]) - applied[rank]
    }
    return f"missing transfers by rank: {missing}"


def _full_section(array: DistributedArray) -> RegularSection:
    if array.rank != 1:
        raise ValueError(f"{array.name} must be rank-1 for redistribution")
    return RegularSection(0, array.shape[0] - 1, 1)


def redistribute_resilient(
    vm: VirtualMachine,
    dst: DistributedArray,
    src: DistributedArray,
    schedule: CommSchedule | None = None,
    policy: RetryPolicy | None = None,
) -> tuple[RedistributionStats, ResilienceReport]:
    """Execute ``dst = src`` (whole arrays) over an unreliable network.

    The resilient counterpart of
    :func:`repro.runtime.redistribute.redistribute`: same schedule, same
    statistics, but acknowledged delivery and destination verification.
    Returns ``(stats, report)``; raises :class:`ExchangeFailure` rather
    than ever leaving ``dst`` silently wrong.
    """
    if dst.shape != src.shape:
        raise ValueError(
            f"shape mismatch: {dst.name}{list(dst.shape)} vs "
            f"{src.name}{list(src.shape)}"
        )
    if schedule is None:
        schedule = compute_comm_schedule(
            dst, _full_section(dst), src, _full_section(src)
        )
    stats = stats_from_schedule(schedule)
    report = execute_copy_resilient(
        vm, dst, _full_section(dst), src, _full_section(src),
        schedule=schedule, policy=policy,
    )
    return stats, report
