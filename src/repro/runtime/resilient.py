"""Resilient array exchanges over an unreliable interconnect.

:func:`repro.runtime.exec.execute_copy` assumes the fabric is perfect:
every packed payload arrives exactly once, intact, one superstep after
it was sent.  Under a :class:`~repro.machine.faults.FaultPlan` none of
that holds -- messages can be dropped, duplicated, reordered, corrupted,
or delayed by rank stalls.  This module wraps the copy/redistribution
executors in an acknowledged-delivery protocol built from ordinary BSP
supersteps (see docs/FAULT_MODEL.md for the superstep diagram):

* every transfer travels as a sequence-numbered :class:`Packet` whose
  CRC-32 covers header *and* payload, so any single corrupted field is
  detected at the receiver;
* receivers apply packets **idempotently** (a transfer id is applied at
  most once -- duplicates are counted and discarded) and answer with
  cumulative, checksummed ACKs each round, plus immediate NACKs for
  packets that arrive corrupted;
* senders retransmit any unacknowledged transfer after a configurable
  timeout measured in supersteps, up to a bounded number of retries,
  from the payload staged at pack time (so Fortran read-before-write
  semantics survive retransmission even for aliased self-copies);
* after convergence a **self-verification** pass checksums every
  destination section against the schedule-predicted checksum of the
  staged payload, so silent data loss is a hard :class:`ExchangeFailure`
  rather than a wrong answer;
* with an :class:`~repro.machine.audit.IntegrityAuditor` the exchange
  runs in **verified mode** (docs/FAULT_MODEL.md §5): the block-checksum
  ledger is audited after every protocol round, and an in-arena
  ``scribble`` fault (bits rotting at rest, invisible to packet CRCs)
  is localized to ``(rank, arena, chunk, slots)`` and repaired in
  place -- from the sender's retransmit buffer when the slots belong to
  an applied transfer or staged local copy, else from the newest
  covering checkpoint, escalating to a full rank restore only when
  localization fails, and raising :class:`ExchangeFailure` naming the
  unrecoverable ``(rank, arena, chunk)`` when even that is impossible.
  A per-rank flight recorder
  (:class:`~repro.machine.trace.FlightRecorder`) is dumped into
  ``fault-reports/`` on any failure for post-mortem;

* whole-rank **crashes** (:class:`~repro.machine.faults.FaultPlan` kill
  points) are survivable when a
  :class:`~repro.machine.checkpoint.CheckpointStore` is supplied:
  participants exchange per-round heartbeats, survivors *park*
  retransmissions toward a peer whose ACK/heartbeat window has been
  silent for ``suspect_after`` rounds, and a restarted rank restores its
  arenas and protocol state from its last checkpoint, after which the
  missing transfers are replayed idempotently from the senders'
  pack-time logs.  Without a checkpoint store a crash is a hard
  :class:`ExchangeFailure` whose report names the unrecoverable rank and
  superstep.

The result is the property the tests sweep over fault seeds: a resilient
exchange either produces results bit-identical to the fault-free
execution or raises :class:`ExchangeFailure` -- never silently wrong
data.  At zero fault rate the protocol costs one extra superstep over
:func:`execute_copy` and reports zero retries.
"""

from __future__ import annotations

import itertools
import os
import struct
import zlib
from dataclasses import dataclass, field
from pathlib import Path

import numpy as np

from ..distribution.array import DistributedArray
from ..distribution.section import RegularSection
from ..machine.audit import IntegrityAuditor
from ..machine.checkpoint import CheckpointStore
from ..machine.trace import FlightRecorder
from ..machine.iface import Machine
from .commsets import CommSchedule, Transfer
from .plancache import cached_comm_schedule
from .exec import _check_vm, as_index, gather_slots, scatter_slots
from .native import kernels_for
from .redistribute import RedistributionStats, stats_from_schedule

__all__ = [
    "ExchangeFailure",
    "Packet",
    "RecoveryEvent",
    "ResilienceReport",
    "RetryPolicy",
    "execute_copy_resilient",
    "redistribute_resilient",
]

# Unique per-exchange channel ids: leftovers from an aborted or
# still-draining exchange can never be confused with a later one.
_EXCHANGE_IDS = itertools.count()

# Nominal per-packet header charge for traffic accounting (tid, seq,
# checksum, tag overhead).
_HEADER_BYTES = 32


class ExchangeFailure(RuntimeError):
    """A resilient exchange could not be completed *and verified*.

    Raised when retries are exhausted, the superstep budget runs out, or
    destination verification detects silent data loss.  The partial
    :class:`ResilienceReport` is attached as ``.report``.
    """

    def __init__(self, message: str, report: "ResilienceReport") -> None:
        super().__init__(message)
        self.report = report


@dataclass(frozen=True, slots=True)
class RetryPolicy:
    """Bounds of the acknowledged-delivery protocol.

    ``timeout`` is measured in supersteps since a transfer was last
    transmitted; 2 is the minimum that does not spuriously retransmit on
    a healthy network (data crosses one barrier, the ACK a second).
    ``max_retries`` bounds retransmissions per transfer;
    ``max_supersteps`` bounds the whole exchange.  ``suspect_after`` is
    the dead-peer detection window: a participant whose heartbeats/ACKs
    have been missing for that many consecutive rounds is presumed
    crashed, and retransmissions toward it are parked until it is heard
    from again (so a rank's downtime does not burn the retry budget).
    """

    max_retries: int = 8
    timeout: int = 2
    max_supersteps: int = 64
    suspect_after: int = 3

    def __post_init__(self) -> None:
        if self.max_retries < 0:
            raise ValueError(f"max_retries must be >= 0, got {self.max_retries}")
        if self.timeout < 1:
            raise ValueError(f"timeout must be >= 1 superstep, got {self.timeout}")
        if self.max_supersteps < 2:
            raise ValueError(
                f"max_supersteps must be >= 2, got {self.max_supersteps}"
            )
        if self.suspect_after < 1:
            raise ValueError(
                f"suspect_after must be >= 1 round, got {self.suspect_after}"
            )


@dataclass(frozen=True, slots=True)
class Packet:
    """One transfer transmission: header + payload, self-checksummed."""

    tid: int  # transfer id (index into the schedule's transfer list)
    seq: int  # transmission number: 0 first send, then 1, 2, ... retries
    checksum: int  # CRC-32 over header and payload bytes
    payload: np.ndarray

    @property
    def nbytes(self) -> int:
        return int(self.payload.nbytes) + _HEADER_BYTES

    def valid(self) -> bool:
        try:
            return self.checksum == _packet_checksum(self.tid, self.seq, self.payload)
        except Exception:
            return False


def _packet_checksum(tid: int, seq: int, payload: np.ndarray) -> int:
    header = struct.pack("<qq", tid, seq) + payload.dtype.str.encode()
    crc = zlib.crc32(header)
    return zlib.crc32(np.ascontiguousarray(payload).tobytes(), crc)


def _values_checksum(values: np.ndarray) -> int:
    return zlib.crc32(np.ascontiguousarray(values).tobytes())


def _ack(tids: tuple[int, ...]) -> tuple:
    return ("ack", tids, zlib.crc32(repr(tids).encode()))


def _nack(tid: int) -> tuple:
    return ("nack", tid, zlib.crc32(repr(tid).encode()))


def _hb(rank: int, incarnation: int) -> tuple:
    """Checksummed liveness beacon; the incarnation lets peers tell a
    reboot from a long stall."""
    body = (rank, incarnation)
    return ("hb", body, zlib.crc32(repr(body).encode()))


def _valid_control(payload, kind: str) -> bool:
    """Checksummed control messages: corrupted ACK/NACKs are discarded
    rather than poisoning sender bookkeeping."""
    return (
        isinstance(payload, tuple)
        and len(payload) == 3
        and payload[0] == kind
        and payload[2] == zlib.crc32(repr(payload[1]).encode())
    )


@dataclass(frozen=True, slots=True)
class RecoveryEvent:
    """One completed crash recovery: which rank died, where it rewound
    to, and how much had to be replayed."""

    rank: int
    crash_superstep: int
    checkpoint_superstep: int
    replayed_transfers: int
    round_no: int  # protocol round at which the restore happened


@dataclass
class ResilienceReport:
    """What an acknowledged exchange cost and detected."""

    transfers: int  # remote transfers in the schedule
    local_transfers: int
    supersteps: int = 0  # barriers this exchange consumed
    retries: int = 0  # retransmissions (beyond each first send)
    retransmitted_bytes: int = 0
    detected_corruptions: int = 0  # checksum-failed packets at receivers
    duplicates_ignored: int = 0
    nacks_sent: int = 0
    converged: bool = False
    verified: bool = False
    crashes: list[tuple[int, int]] = field(default_factory=list)  # (rank, step)
    recoveries: list[RecoveryEvent] = field(default_factory=list)
    replayed_transfers: int = 0
    parked_rounds: int = 0  # rounds spent with at least one suspected peer
    checkpoints_taken: int = 0
    checkpoint_bytes: int = 0
    unrecoverable: tuple[int, int] | None = None  # (rank, superstep)
    # Verified-mode (IntegrityAuditor) accounting -- docs/FAULT_MODEL.md §5.
    audits: int = 0
    audit_chunks_checked: int = 0
    scribbles_detected: int = 0  # ledger divergences found by audits
    chunks_repaired: int = 0  # divergences healed in place
    repaired_from_retransmit: int = 0  # slots rewritten from pack-time payloads
    repaired_from_checkpoint: int = 0  # slots patched from a covering checkpoint
    audit_escalations: int = 0  # full rank restores after failed localization
    unrecoverable_chunk: tuple[int, str, int] | None = None  # (rank, arena, chunk)
    flight_dump: str | None = None  # flight-recorder JSON path, set on failure
    trace_dump: str | None = None  # observability JSONL path, set on failure
    schedule: CommSchedule | None = field(default=None, repr=False)

    @property
    def extra_supersteps(self) -> int:
        """Overhead versus the 2-superstep fault-free ``execute_copy``."""
        return self.supersteps - 2


@dataclass
class _Outbound:
    """Sender-side bookkeeping for one remote transfer."""

    transfer: Transfer
    payload: np.ndarray
    last_sent: int = 0  # protocol round of the latest transmission
    sends: int = 1
    acked: bool = False
    nacked: bool = False
    exhausted: bool = False


def execute_copy_resilient(
    vm: Machine,
    a: DistributedArray,
    sec_a: RegularSection,
    b: DistributedArray,
    sec_b: RegularSection,
    schedule: CommSchedule | None = None,
    policy: RetryPolicy | None = None,
    checkpoints: CheckpointStore | None = None,
    auditor: IntegrityAuditor | bool | None = None,
    recorder: FlightRecorder | None = None,
    flight_dir: str = "fault-reports",
) -> ResilienceReport:
    """Run ``A(sec_a) = B(sec_b)`` tolerating network faults.

    Same semantics as :func:`repro.runtime.exec.execute_copy` (Fortran
    read-before-write, precomputed-schedule reuse) but every remote
    transfer is acknowledged, retransmitted on loss, rejected on
    corruption, applied idempotently on duplication, and the destination
    sections are verified against schedule-predicted checksums before
    returning.  Either the copy completes bit-identical to the fault-free
    execution and a :class:`ResilienceReport` is returned, or
    :class:`ExchangeFailure` is raised.

    With a ``checkpoints`` store, whole-rank crashes are survivable: a
    baseline checkpoint is taken before the pack superstep, further ones
    per the store's policy, and a restarted rank restores from its last
    checkpoint and has the missing transfers replayed.  Without a store,
    any crash raises :class:`ExchangeFailure` whose report names the
    unrecoverable ``(rank, superstep)``.

    With an ``auditor`` (pass ``True`` for a default
    :class:`~repro.machine.audit.IntegrityAuditor`) the exchange runs in
    **verified mode**: every arena is ledgered, every protocol round is
    followed by an integrity audit, and at-rest corruption (``scribble``
    faults) is repaired through the escalation ladder of
    docs/FAULT_MODEL.md §5 -- retransmit-buffer rewrite, checkpoint
    chunk patch, full rank restore -- or the exchange fails naming the
    unrecoverable ``(rank, arena, chunk)``.  A
    :class:`~repro.machine.trace.FlightRecorder` (auto-created in
    verified mode unless one is passed) is dumped into ``flight_dir`` on
    any :class:`ExchangeFailure` and its path recorded on the attached
    report's ``flight_dump``.
    """
    if auditor is True:
        auditor = IntegrityAuditor()
    elif auditor is False:
        auditor = None
    if auditor is not None and recorder is None:
        recorder = FlightRecorder()
    attached_recorder = False
    attached_auditor = False
    try:
        if recorder is not None:
            recorder.attach(vm)
            attached_recorder = True
        if auditor is not None:
            auditor.attach(vm)
            attached_auditor = True
        if schedule is None:
            schedule = cached_comm_schedule(a, sec_a, b, sec_b)
        with vm.obs.span(
            "exchange",
            array=a.name,
            transfers=len(schedule.transfers),
            elements=schedule.communicated_elements,
            payload_bytes=sum(
                 8 * len(tr) + _HEADER_BYTES for tr in schedule.transfers
            ),
        ):
            return _execute_copy_resilient(
                vm, a, sec_a, b, sec_b, schedule, policy, checkpoints,
                auditor, recorder,
            )
    except ExchangeFailure as exc:
        if recorder is not None:
            try:
                exc.report.flight_dump = str(
                    recorder.dump(flight_dir, label=a.name)
                )
            except OSError:  # pragma: no cover - dump dir unwritable
                pass
        if vm.obs.enabled:
            from ..obs.export import rotate_reports, write_jsonl

            try:
                path = Path(flight_dir) / f"obs-{a.name}-p{os.getpid()}.jsonl"
                exc.report.trace_dump = str(write_jsonl(vm.obs, path))
                rotate_reports(flight_dir)
            except OSError:  # pragma: no cover - dump dir unwritable
                pass
        raise
    finally:
        if attached_auditor:
            auditor.detach(vm)
        if attached_recorder:
            recorder.detach()


def _execute_copy_resilient(
    vm: Machine,
    a: DistributedArray,
    sec_a: RegularSection,
    b: DistributedArray,
    sec_b: RegularSection,
    schedule: CommSchedule | None,
    policy: RetryPolicy | None,
    checkpoints: CheckpointStore | None,
    auditor: IntegrityAuditor | None,
    recorder: FlightRecorder | None,
) -> ResilienceReport:
    _check_vm(vm, a)
    _check_vm(vm, b)
    if policy is None:
        policy = RetryPolicy()
    if schedule is None:
        schedule = cached_comm_schedule(a, sec_a, b, sec_b)
    if vm.dead_ranks:
        raise ValueError(
            f"ranks {list(vm.dead_ranks)} are dead; an exchange must start "
            "on an all-alive machine"
        )

    obs = vm.obs
    xid = next(_EXCHANGE_IDS)
    data_tag = ("rxd", xid)
    ack_tag = ("rxa", xid)
    nack_tag = ("rxn", xid)
    hb_tag = ("rxh", xid)
    all_tags = (data_tag, ack_tag, nack_tag, hb_tag)
    core_tags = (data_tag, ack_tag, nack_tag)  # hopelessness ignores heartbeats

    transfers = schedule.transfers
    report = ResilienceReport(
        transfers=len(transfers),
        local_transfers=len(schedule.locals_),
        schedule=schedule,
    )

    # Host-side protocol state, partitioned per rank (each node function
    # only touches its own rank's slice -- the SPMD discipline).
    outbox: list[dict[int, _Outbound]] = [dict() for _ in range(vm.p)]
    expected: list[dict[int, Transfer]] = [dict() for _ in range(vm.p)]
    applied: list[set[int]] = [set() for _ in range(vm.p)]
    staged_locals: list[list[tuple[Transfer, np.ndarray]]] = [
        [] for _ in range(vm.p)
    ]
    for tid, tr in enumerate(transfers):
        expected[tr.dest][tid] = tr

    # Crash bookkeeping.  ``integrated`` is the incarnation whose state
    # this exchange has restored (0 = the original boot); a live rank
    # with a higher incarnation has rebooted and must restore from
    # checkpoint before it may participate again.  ``last_heard`` drives
    # the failure detector: the latest round at which *anyone* received
    # traffic (data, control, or heartbeat) from each rank.
    participants = sorted(
        {tr.source for tr in transfers} | {tr.dest for tr in transfers}
    )
    peers = {r: [q for q in participants if q != r] for r in participants}
    integrated = [vm.processors[r].incarnation for r in range(vm.p)]
    last_heard = [0] * vm.p
    crashes_seen = len(vm.crash_log)

    def observe_crashes() -> None:
        nonlocal crashes_seen
        new = vm.crash_log[crashes_seen:]
        crashes_seen = len(vm.crash_log)
        for rank, step in new:
            report.crashes.append((rank, step))
            if checkpoints is None:
                report.unrecoverable = (rank, step)
                raise ExchangeFailure(
                    f"rank {rank} crashed at superstep {step} and "
                    "checkpointing is disabled -- exchange unrecoverable "
                    "(pass a CheckpointStore to enable recovery)",
                    report,
                )

    def take_checkpoint() -> None:
        with obs.span("checkpoint", step=vm.superstep):
            ckpt = checkpoints.save(
                vm,
                states={
                    r: {
                        "applied": frozenset(applied[r]),
                        "locals_applied": locals_applied,
                    }
                    for r in range(vm.p)
                },
            )
        report.checkpoints_taken += 1
        report.checkpoint_bytes += ckpt.nbytes
        obs.inc("resilient.checkpoints")
        obs.inc("resilient.checkpoint_bytes", ckpt.nbytes)

    def recover_rank(rank: int, round_no: int) -> None:
        """Restore a rebooted rank from its last checkpoint and arrange
        replay of every transfer its wiped memory lost."""
        proc = vm.processors[rank]
        crash_step = proc.crashed_at if proc.crashed_at is not None else -1
        entry = checkpoints.latest_for(rank) if checkpoints is not None else None
        if entry is None:
            report.unrecoverable = (rank, crash_step)
            # Name the retention window so degraded-mode membership
            # decisions (runtime/elastic.py) are diagnosable from the
            # exception alone: the covering checkpoint either never
            # existed or was evicted by the retention policy.
            window = (
                checkpoints.describe_window()
                if checkpoints is not None
                else "checkpointing disabled"
            )
            covered = (
                checkpoints.covering(crash_step)
                if checkpoints is not None and crash_step >= 0
                else None
            )
            why = (
                "the covering checkpoint was evicted by retention"
                if covered is None
                else f"the checkpoint at superstep {covered.superstep} omits the rank"
            )
            raise ExchangeFailure(
                f"rank {rank} crashed at superstep {crash_step} and no "
                f"retained checkpoint covers it ({why}; {window}) -- "
                "exchange unrecoverable",
                report,
            )
        ckpt, _ = entry
        state = checkpoints.restore_rank(vm, rank, ckpt) or {}
        applied[rank] = set(state.get("applied", ()))
        if not state.get("locals_applied", False) and staged_locals[rank]:
            # The checkpoint predates the pack superstep: replay the
            # rank's local copies from the host-side pack log.
            dst_mem = proc.memory(a.name)
            for tr, values in staged_locals[rank]:
                dst_mem[as_index(tr.dst_slots)] = values
        if auditor is not None:
            # The restored arenas (checksum-verified) plus the replayed
            # locals are the rank's new ledger truth.
            auditor.capture_rank(proc)
        if recorder is not None:
            recorder.record(
                rank, vm.superstep, "restore",
                f"crash at superstep {crash_step}, rewound to "
                f"checkpoint superstep {ckpt.superstep}",
            )
        obs.instant(
            "restore", rank=rank, crash_superstep=crash_step,
            checkpoint_superstep=ckpt.superstep,
        )
        obs.inc("resilient.restores")
        replayed = 0
        for tid, tr in expected[rank].items():
            if tid in applied[rank]:
                continue
            ob = outbox[tr.source].get(tid)
            if ob is None:
                continue
            # Fresh delivery attempt: the sends burned against a dead
            # NIC do not count toward the retry budget.
            ob.acked = ob.nacked = ob.exhausted = False
            ob.sends = 1
            ob.last_sent = round_no - policy.timeout  # due next round
            replayed += 1
        report.replayed_transfers += replayed
        report.recoveries.append(
            RecoveryEvent(rank, crash_step, ckpt.superstep, replayed, round_no)
        )
        last_heard[rank] = round_no  # a fresh reboot is not a suspect
        integrated[rank] = proc.incarnation

    def integrate_reboots(round_no: int) -> None:
        for rank in range(vm.p):
            proc = vm.processors[rank]
            if proc.alive and proc.incarnation > integrated[rank]:
                recover_rank(rank, round_no)

    def healthy() -> bool:
        return all(
            proc.alive and proc.incarnation == integrated[proc.rank]
            for proc in vm.processors
        )

    # ------------------------------------------------------------------
    # Verified mode: audit-and-repair ladder (docs/FAULT_MODEL.md §5).
    # The auditor's shadow ledger is the *oracle* -- it tells us which
    # bytes rotted -- but repairs deliberately source their data from
    # real redundant storage (the senders' pack-time payload log, then
    # the checkpoint store), the way a production ledger holding only
    # CRCs would have to; the post-repair re-audit then verifies the
    # repair reproduced the trusted bytes, escalating when it did not.
    # ------------------------------------------------------------------

    # Destination-slot provenance for repair step 1: which transfer or
    # staged local copy legitimately wrote each A slot on each rank.
    _slot_sources: list[dict[int, tuple[str, int, int]] | None] = [None] * vm.p

    def slot_sources(rank: int) -> dict[int, tuple[str, int, int]]:
        cached = _slot_sources[rank]
        if cached is None:
            cached = {}
            for tid, tr in expected[rank].items():
                for pos, slot in enumerate(tr.dst_slots):
                    cached[int(slot)] = ("transfer", tid, pos)
            for li, (tr, _values) in enumerate(staged_locals[rank]):
                for pos, slot in enumerate(tr.dst_slots):
                    cached[int(slot)] = ("local", li, pos)
            _slot_sources[rank] = cached
        return cached

    def repair_divergence(div) -> bool:
        """Ladder steps 1-2: rewrite slots covered by an applied
        transfer or staged local from the pack-time payload log, patch
        the rest from the newest covering checkpoint.  Returns ``False``
        when neither source covers the damage (caller escalates)."""
        if not div.localized:
            return False
        arena = vm.processors[div.rank].memory(div.arena)
        sources = slot_sources(div.rank) if div.arena == a.name else {}
        leftover: list[int] = []
        for slot in div.slots:
            value = None
            src = sources.get(slot)
            if src is not None:
                kind, i, pos = src
                if kind == "transfer" and i in applied[div.rank]:
                    ob = outbox[expected[div.rank][i].source].get(i)
                    if ob is not None:
                        value = ob.payload[pos]
                elif kind == "local" and locals_applied:
                    value = staged_locals[div.rank][i][1][pos]
            if value is not None:
                arena[slot] = value
                report.repaired_from_retransmit += 1
            else:
                leftover.append(slot)
        if leftover:
            entry = (
                checkpoints.latest_for(div.rank)
                if checkpoints is not None else None
            )
            values = entry[1].arena_values(div.arena) if entry else None
            if values is None or values.size != arena.size:
                return False
            idx = np.asarray(leftover, dtype=np.int64)
            arena[idx] = values[idx].astype(arena.dtype, copy=False)
            report.repaired_from_checkpoint += len(leftover)
        report.chunks_repaired += 1
        obs.instant(
            "repair", rank=div.rank, arena=div.arena, chunk=div.chunk,
            from_checkpoint=len(leftover),
        )
        obs.inc("resilient.chunks_repaired")
        if recorder is not None:
            recorder.record(
                div.rank, vm.superstep, "repair",
                f"arena={div.arena} chunk={div.chunk} "
                f"slots={list(div.slots)} from_checkpoint={len(leftover)}",
            )
        return True

    def full_restore(div, round_no: int) -> None:
        """Ladder step 3: localization (or in-place repair) failed --
        rewind the whole rank to its newest checkpoint, exactly like a
        crash recovery, and reopen the transfers the rewind lost."""
        entry = (
            checkpoints.latest_for(div.rank)
            if checkpoints is not None else None
        )
        if entry is None:
            report.unrecoverable_chunk = (div.rank, div.arena, div.chunk)
            raise ExchangeFailure(
                f"rank {div.rank} arena {div.arena!r} chunk {div.chunk} "
                "diverged and cannot be repaired (no retransmit coverage, "
                "no retained checkpoint) -- corruption detected but "
                "unrecoverable",
                report,
            )
        ckpt, _ = entry
        proc = vm.processors[div.rank]
        state = checkpoints.restore_rank(vm, div.rank, ckpt) or {}
        applied[div.rank] = set(state.get("applied", ()))
        if not state.get("locals_applied", False) and staged_locals[div.rank]:
            dst_mem = proc.memory(a.name)
            for tr, values in staged_locals[div.rank]:
                dst_mem[as_index(tr.dst_slots)] = values
        reopened = 0
        for tid, tr in expected[div.rank].items():
            if tid in applied[div.rank]:
                continue
            ob = outbox[tr.source].get(tid)
            if ob is None:
                continue
            ob.acked = ob.nacked = ob.exhausted = False
            ob.sends = 1
            ob.last_sent = round_no - policy.timeout  # due next round
            reopened += 1
        report.replayed_transfers += reopened
        report.audit_escalations += 1
        obs.instant(
            "restore", rank=div.rank, arena=div.arena, chunk=div.chunk,
            checkpoint_superstep=ckpt.superstep, escalation=True,
        )
        obs.inc("resilient.restores")
        auditor.capture_rank(proc)
        if recorder is not None:
            recorder.record(
                div.rank, vm.superstep, "restore",
                f"audit escalation: arena={div.arena} chunk={div.chunk}, "
                f"rewound to checkpoint superstep {ckpt.superstep}, "
                f"{reopened} transfer(s) reopened",
            )

    def audit_and_repair(round_no: int) -> None:
        """Audit every ledgered arena and heal any divergence via the
        ladder; returns with the machine audit-clean or raises
        :class:`ExchangeFailure` naming the unrecoverable chunk."""
        if auditor is None:
            return
        try:
            with obs.span("audit", round=round_no):
                divs = auditor.audit(vm)
            obs.inc("resilient.audits")
            if not divs:
                return
            report.scribbles_detected += len(divs)
            obs.inc("resilient.scribbles_detected", len(divs))
            if recorder is not None:
                for div in divs:
                    recorder.record(
                        div.rank, vm.superstep, "audit",
                        f"diverged arena={div.arena} chunk={div.chunk} "
                        f"slots={list(div.slots)}",
                    )
            unrepaired = [d for d in divs if not repair_divergence(d)]
            # Re-audit: a repair that did not reproduce the trusted
            # bytes (e.g. a stale checkpoint) is treated as a failed
            # localization and escalated, never trusted.
            residual = unrepaired + auditor.audit(vm)
            if not residual:
                return
            for rank in sorted({d.rank for d in residual}):
                full_restore(
                    next(d for d in residual if d.rank == rank), round_no
                )
            still = auditor.audit(vm)
            if still:
                d = still[0]
                report.unrecoverable_chunk = (d.rank, d.arena, d.chunk)
                raise ExchangeFailure(
                    f"rank {d.rank} arena {d.arena!r} chunk {d.chunk} still "
                    "diverged after a full checkpoint restore -- corruption "
                    "detected but unrecoverable",
                    report,
                )
        finally:
            report.audits = auditor.stats.audits
            report.audit_chunks_checked = auditor.stats.chunks_checked

    # ------------------------------------------------------------------
    # Superstep 1: pack.  Everything is read (remote payloads staged in
    # the outbox, local payloads staged) before any element is written,
    # and retransmissions reuse the staged copies -- so aliased
    # self-copies stay correct no matter how often packets are resent.
    # The outbox and the staged-locals list double as the senders'
    # stable pack-time log: like the checkpoint store they live host-side
    # and survive rank crashes, which is what makes replay possible.
    # ------------------------------------------------------------------

    locals_applied = False
    if checkpoints is not None:
        # Baseline checkpoint: taken *before* pack so even a crash at
        # the very first barrier has somewhere to rewind to.
        take_checkpoint()

    def pack_phase(ctx):
        # Ranks beyond the RHS grid (elastic machines run with
        # vm.p >= grid.size) hold no source shard: nothing to pack.
        if ctx.rank >= b.grid.size:
            return
        src_mem = ctx.memory(b.name)
        # Packing runs through the native/NumPy dispatch seam
        # (repro.runtime.native, global mode): the hot gather loops are
        # compiled when available, bit-identical either way.
        kernels = kernels_for(None)
        for tid, tr in enumerate(transfers):
            if tr.source != ctx.rank:
                continue
            payload = gather_slots(src_mem, tr.src_slots, kernels)
            outbox[ctx.rank][tid] = _Outbound(tr, payload)
            ctx.send(tr.dest, data_tag, Packet(tid, 0, _packet_checksum(tid, 0, payload), payload))
        staged = [
            (tr, gather_slots(src_mem, tr.src_slots, kernels))
            for tr in schedule.locals_
            if tr.source == ctx.rank
        ]
        staged_locals[ctx.rank] = staged
        if staged:
            dst_mem = ctx.memory(a.name)
            for tr, values in staged:
                scatter_slots(dst_mem, tr.dst_slots, values, kernels)
                if auditor is not None:
                    auditor.note_write(ctx.rank, a.name, tr.dst_slots)

    with obs.span(
        "pack_phase",
        array=a.name,
        transfers=len(transfers),
        elements=sum(len(tr) for tr in transfers),
        payload_bytes=sum(8 * len(tr) + _HEADER_BYTES for tr in transfers),
    ):
        vm.run(pack_phase)
    report.supersteps += 1
    locals_applied = True
    observe_crashes()
    audit_and_repair(0)

    # ------------------------------------------------------------------
    # Protocol rounds: receive/apply/ACK + retransmit, one superstep
    # each, until every expected transfer has been applied.  Every live
    # participant also beacons a heartbeat to its peers; a peer silent
    # for ``suspect_after`` rounds is presumed crashed and
    # retransmissions toward it park until it is heard from again.
    # ------------------------------------------------------------------

    def protocol_round(round_no: int, suspects: frozenset[int]):
        def step(ctx):
            rank = ctx.rank
            proc = vm.processors[rank]
            if proc.incarnation > integrated[rank]:
                # Freshly rebooted, not yet restored from checkpoint:
                # announce liveness (the new incarnation) and do nothing
                # else -- local memory is still wiped.
                for q in peers.get(rank, ()):
                    ctx.send(q, hb_tag, _hb(rank, proc.incarnation))
                return
            # Liveness: fold heartbeats into the shared failure detector.
            for source, payload in ctx.drain(hb_tag):
                if _valid_control(payload, "hb"):
                    last_heard[source] = max(last_heard[source], round_no)
            # Sender role: fold in ACK/NACK traffic (checksummed; a
            # corrupted control message is discarded, the timeout covers).
            for source, payload in ctx.drain(ack_tag):
                if _valid_control(payload, "ack"):
                    last_heard[source] = max(last_heard[source], round_no)
                    for tid in payload[1]:
                        ob = outbox[rank].get(tid)
                        if ob is not None:
                            ob.acked = True
            for source, payload in ctx.drain(nack_tag):
                if _valid_control(payload, "nack"):
                    last_heard[source] = max(last_heard[source], round_no)
                    ob = outbox[rank].get(payload[1])
                    if ob is not None and not ob.acked:
                        ob.nacked = True

            # Receiver role: validate, apply idempotently, NACK corruption.
            dst_mem = ctx.memory(a.name) if expected[rank] else None
            for source, payload in ctx.drain(data_tag):
                last_heard[source] = max(last_heard[source], round_no)
                if not isinstance(payload, Packet) or not payload.valid():
                    report.detected_corruptions += 1
                    obs.inc("resilient.detected_corruptions")
                    tid = getattr(payload, "tid", None)
                    if isinstance(tid, int) and tid in expected[rank]:
                        ctx.send(source, nack_tag, _nack(tid))
                        report.nacks_sent += 1
                        obs.inc("resilient.nacks_sent")
                    continue
                tr = expected[rank].get(payload.tid)
                if tr is None or tr.source != source:
                    # A checksum-consistent packet for a transfer this rank
                    # does not expect -- only reachable through tag/routing
                    # corruption; drop it.
                    report.detected_corruptions += 1
                    obs.inc("resilient.detected_corruptions")
                    continue
                if payload.tid in applied[rank]:
                    report.duplicates_ignored += 1
                    obs.inc("resilient.duplicates_ignored")
                    continue
                dst_mem[as_index(tr.dst_slots)] = payload.payload
                applied[rank].add(payload.tid)
                if auditor is not None:
                    auditor.note_write(rank, a.name, tr.dst_slots)

            # Receiver role: cumulative ACKs, re-sent every round so a
            # dropped ACK is repaired by the next one.
            by_source: dict[int, list[int]] = {}
            for tid in applied[rank]:
                by_source.setdefault(expected[rank][tid].source, []).append(tid)
            for source, tids in by_source.items():
                ctx.send(source, ack_tag, _ack(tuple(sorted(tids))))

            # Sender role: retransmit overdue or NACKed transfers --
            # except toward suspected-dead peers, where retransmissions
            # park so an outage cannot exhaust the retry budget.
            for tid, ob in outbox[rank].items():
                if ob.acked or ob.exhausted:
                    continue
                if ob.transfer.dest in suspects:
                    continue
                if not ob.nacked and round_no - ob.last_sent < policy.timeout:
                    continue
                if ob.sends > policy.max_retries:
                    ob.exhausted = True
                    continue
                seq = ob.sends
                ctx.send(
                    ob.transfer.dest,
                    data_tag,
                    Packet(tid, seq, _packet_checksum(tid, seq, ob.payload), ob.payload),
                )
                ob.sends += 1
                ob.last_sent = round_no
                ob.nacked = False
                report.retries += 1
                report.retransmitted_bytes += int(ob.payload.nbytes) + _HEADER_BYTES
                # Emitted at the same code point as report.retries so the
                # Chrome-trace instant count always equals the report.
                obs.instant(
                    "retransmit", rank=rank, tid=tid,
                    dest=ob.transfer.dest, seq=seq,
                )
                obs.inc("resilient.retries")

            # Liveness beacon to every peer (cheap, checksummed).
            for q in peers.get(rank, ()):
                ctx.send(q, hb_tag, _hb(rank, proc.incarnation))

        return step

    def data_converged() -> bool:
        return all(
            set(expected[rank]) <= applied[rank] for rank in range(vm.p)
        )

    def suspects_now(round_no: int) -> frozenset[int]:
        return frozenset(
            r for r in participants
            if round_no - last_heard[r] > policy.suspect_after
        )

    # ------------------------------------------------------------------
    # Cleanup phase function: drain in-flight leftovers (late duplicates,
    # final ACKs, stalled stragglers, heartbeats) so the exchange leaves
    # the network idle.  The tags are exchange-unique, so even a
    # straggler the fault plan pins past the budget cannot interfere
    # with later exchanges.
    # ------------------------------------------------------------------

    def cleanup(ctx):
        for _source, payload in ctx.drain(data_tag):
            # Validate even the leftovers we discard: a packet the fault
            # plan corrupted in its final flight is a *detected*
            # corruption, not a duplicate -- the sensitivity sweep
            # asserts every injected wire fault is accounted for.
            if isinstance(payload, Packet) and payload.valid():
                report.duplicates_ignored += 1
                obs.inc("resilient.duplicates_ignored")
            else:
                report.detected_corruptions += 1
                obs.inc("resilient.detected_corruptions")
        ctx.drain(ack_tag)
        ctx.drain(nack_tag)
        ctx.drain(hb_tag)

    round_no = 0
    rounds_since_ckpt = 0
    while True:
        # Protocol rounds until every expected transfer is applied on an
        # all-alive, fully-restored machine.  A crash mid-exchange keeps
        # the loop running: survivors park, the victim's downtime
        # elapses, and ``integrate_reboots`` rewinds it to its last
        # checkpoint and reopens the transfers its wiped memory lost.
        while not (data_converged() and healthy()):
            if report.supersteps >= policy.max_supersteps:
                raise ExchangeFailure(
                    f"exchange did not converge within {policy.max_supersteps} "
                    f"supersteps ({_missing_summary(expected, applied, vm.p)})",
                    report,
                )
            suspects = suspects_now(round_no + 1)
            if (
                healthy()
                and not suspects
                and _all_exhausted(outbox, expected, applied, vm.p)
                and not vm.outstanding(core_tags)
            ):
                raise ExchangeFailure(
                    "retries exhausted with transfers still undelivered "
                    f"({_missing_summary(expected, applied, vm.p)})",
                    report,
                )
            round_no += 1
            if suspects:
                report.parked_rounds += 1
            with obs.span(
                "protocol_round", round=round_no, suspects=len(suspects)
            ):
                vm.run(protocol_round(round_no, suspects))
            report.supersteps += 1
            observe_crashes()
            integrate_reboots(round_no)
            audit_and_repair(round_no)
            rounds_since_ckpt += 1
            if (
                checkpoints is not None
                and healthy()
                and checkpoints.policy.due(rounds_since_ckpt)
            ):
                take_checkpoint()
                rounds_since_ckpt = 0
        report.converged = True

        # Drain stragglers.  A crash at a cleanup barrier reopens the
        # exchange (the victim's recovery resets its applied set), so on
        # any health change we fall back into the protocol loop.
        reopened = False
        while vm.outstanding(all_tags) and report.supersteps < policy.max_supersteps:
            with obs.span("cleanup_round"):
                vm.run(cleanup)
            report.supersteps += 1
            observe_crashes()
            integrate_reboots(round_no)
            audit_and_repair(round_no)
            if not (data_converged() and healthy()):
                reopened = True
                break
        if not reopened and data_converged() and healthy():
            break

    # ------------------------------------------------------------------
    # Self-verification: every destination section must checksum to what
    # the schedule predicted at pack time.  Catches silent loss that the
    # per-packet machinery somehow missed -- the difference between a
    # wrong answer and a hard error.
    # ------------------------------------------------------------------

    failures = []
    with obs.span("verify_destinations", array=a.name):
        for rank in range(a.grid.size):
            dst_mem = vm.processors[rank].memory(a.name)
            checks = [
                (tid, expected[rank][tid], outbox[expected[rank][tid].source][tid].payload)
                for tid in expected[rank]
            ]
            checks += [(None, tr, values) for tr, values in staged_locals[rank]]
            for tid, tr, payload in checks:
                predicted = _values_checksum(payload.astype(dst_mem.dtype, copy=False))
                actual = _values_checksum(dst_mem[as_index(tr.dst_slots)])
                if predicted != actual:
                    failures.append((rank, tid, tr.source))
    if failures:
        raise ExchangeFailure(
            f"destination verification failed for {len(failures)} transfer(s) "
            f"(rank, tid, source): {failures[:5]} -- silent data loss detected",
            report,
        )
    report.verified = True
    return report


def _all_exhausted(outbox, expected, applied, p: int) -> bool:
    """True when every still-missing transfer's sender has given up."""
    for rank in range(p):
        for tid in set(expected[rank]) - applied[rank]:
            ob = outbox[expected[rank][tid].source].get(tid)
            if ob is not None and not ob.exhausted:
                return False
    return True


def _missing_summary(expected, applied, p: int) -> str:
    missing = {
        rank: sorted(set(expected[rank]) - applied[rank])
        for rank in range(p)
        if set(expected[rank]) - applied[rank]
    }
    return f"missing transfers by rank: {missing}"


def _full_section(array: DistributedArray) -> RegularSection:
    if array.rank != 1:
        raise ValueError(f"{array.name} must be rank-1 for redistribution")
    return RegularSection(0, array.shape[0] - 1, 1)


def redistribute_resilient(
    vm: Machine,
    dst: DistributedArray,
    src: DistributedArray,
    schedule: CommSchedule | None = None,
    policy: RetryPolicy | None = None,
    checkpoints: CheckpointStore | None = None,
    auditor: IntegrityAuditor | bool | None = None,
    recorder: FlightRecorder | None = None,
    flight_dir: str = "fault-reports",
) -> tuple[RedistributionStats, ResilienceReport]:
    """Execute ``dst = src`` (whole arrays) over an unreliable network.

    The resilient counterpart of
    :func:`repro.runtime.redistribute.redistribute`: same schedule, same
    statistics, but acknowledged delivery, destination verification,
    and -- with a ``checkpoints`` store -- crash recovery.  Returns
    ``(stats, report)``; raises :class:`ExchangeFailure` rather than
    ever leaving ``dst`` silently wrong.
    """
    if dst.shape != src.shape:
        raise ValueError(
            f"shape mismatch: {dst.name}{list(dst.shape)} vs "
            f"{src.name}{list(src.shape)}"
        )
    if schedule is None:
        schedule = cached_comm_schedule(
            dst, _full_section(dst), src, _full_section(src)
        )
    stats = stats_from_schedule(schedule)
    report = execute_copy_resilient(
        vm, dst, _full_section(dst), src, _full_section(src),
        schedule=schedule, policy=policy, checkpoints=checkpoints,
        auditor=auditor, recorder=recorder, flight_dir=flight_dir,
    )
    return stats, report
