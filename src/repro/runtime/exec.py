"""Execute array statements on the virtual machine.

Ties the whole system together: distributed-array descriptors supply
local shapes, the access-sequence machinery supplies traversal plans and
communication schedules, and the SPMD machine runs the node programs.

* :func:`distribute` / :func:`collect` move whole arrays between a
  sequential NumPy "host" image and per-rank local memories (used for
  initialization and verification);
* :func:`execute_fill` runs ``A(l:u:s) = value`` with any node-code
  shape from Figure 8;
* :func:`execute_copy` runs ``A(sec_a) = B(sec_b)`` with generated
  communication (pack / exchange / unpack supersteps).
"""

from __future__ import annotations

import numpy as np

from ..distribution.array import DistributedArray
from ..distribution.section import RegularSection
from ..machine.vm import VirtualMachine
from ..obs import ambient
from .address import flat_local_addresses
from .codegen import get_shape, materialize_addresses
from .native import kernels_for
from .commsets import CommSchedule
from .plancache import (
    cached_array_plan,
    cached_comm_schedule,
    cached_comm_schedule_2d,
    cached_localized_arrays,
)

__all__ = [
    "as_index",
    "gather_slots",
    "scatter_slots",
    "distribute",
    "collect",
    "distribute_reference",
    "collect_reference",
    "execute_fill",
    "execute_copy",
    "execute_combine",
    "execute_copy_2d",
    "execute_transpose",
]


def as_index(slots) -> np.ndarray:
    """Slot tuple -> int64 fancy-index array (the packing/unpacking idiom
    shared by every executor, including :mod:`repro.runtime.resilient`)."""
    return np.asarray(slots, dtype=np.int64)


def gather_slots(mem, slots, kernels) -> np.ndarray:
    """Pack ``mem[slots]`` into a fresh buffer -- natively when
    ``kernels`` (from :func:`repro.runtime.native.kernels_for`) can
    serve the call, else the NumPy fancy-index copy.  The executors'
    and the resilient exchange's one packing idiom."""
    if kernels is not None:
        out = kernels.gather(mem, as_index(slots))
        if out is not None:
            ambient().inc("native.dispatch_native")
            return out
        ambient().inc("native.dispatch_numpy")
    return mem[as_index(slots)].copy()


def scatter_slots(mem, slots, values, kernels) -> None:
    """Unpack ``values`` into ``mem[slots]`` -- the scatter twin of
    :func:`gather_slots`, with the same native-or-NumPy dispatch."""
    if kernels is not None:
        if kernels.scatter(mem, as_index(slots), values):
            ambient().inc("native.dispatch_native")
            return
        ambient().inc("native.dispatch_numpy")
    mem[as_index(slots)] = values


def _check_vm(vm: VirtualMachine, array: DistributedArray) -> None:
    # A machine may have *more* ranks than the array's grid (elastic
    # membership runs migrations on a machine grown to max(p, p'); the
    # extra ranks simply hold no shard), but never fewer.
    if vm.p < array.grid.size:
        raise ValueError(
            f"machine has {vm.p} ranks but {array.name} is mapped onto "
            f"{array.grid.size}"
        )


def _dim_images(
    array: DistributedArray, rank: int
) -> list[tuple[np.ndarray, np.ndarray]]:
    """Per-dimension ``(global_indices, local_slots)`` vectors of the
    *whole* array on ``rank`` -- the layout closed form each dimension's
    access-sequence machinery produces for the full-extent section."""
    rc = array.grid.coordinates(rank)
    out: list[tuple[np.ndarray, np.ndarray]] = []
    for dim in array._dims:
        if dim.layout is None:
            idx = np.arange(dim.extent, dtype=np.int64)
            out.append((idx, idx))
        else:
            coord = rc[dim.axis_map.grid_axis]
            out.append(
                cached_localized_arrays(
                    dim.layout.p, dim.layout.k, dim.extent,
                    dim.axis_map.alignment,
                    RegularSection(0, dim.extent - 1, 1), coord,
                )
            )
    return out


def _is_lowest_owner(array: DistributedArray, rank: int) -> bool:
    """Whether ``rank`` is the lowest rank holding each of its elements
    (true for every rank unless the array is replicated over some grid
    axis; with row-major rank linearization the lowest replica holder
    has coordinate 0 on every replicated axis)."""
    rc = array.grid.coordinates(rank)
    return all(
        rc[axis] == 0
        for axis in range(array.grid.rank)
        if array.is_replicated_over_axis(axis)
    )


def distribute(
    vm: VirtualMachine,
    array: DistributedArray,
    values: np.ndarray,
    native: bool | None = None,
) -> None:
    """Scatter a host image into per-rank local memories (named after the
    array).  Replicated axes receive full copies.

    Vectorized: each rank's local image is one cross-product fancy-index
    gather/scatter built from the per-dimension layout closed forms --
    no per-element ownership tests
    (:func:`distribute_reference` keeps that scalar sweep as the oracle).
    With ``native`` (see :mod:`repro.runtime.native`), rank-1 arrays run
    the gather/scatter pair through the compiled pack/unpack kernels.
    """
    _check_vm(vm, array)
    values = np.asarray(values)
    if values.shape != array.shape:
        raise ValueError(
            f"host image shape {values.shape} != array shape {array.shape}"
        )
    kernels = kernels_for(native)
    with vm.obs.span("distribute", array=array.name):
        for rank in range(array.grid.size):
            shape = array.local_shape(rank)
            local = np.zeros(shape, dtype=values.dtype)
            dims = _dim_images(array, rank)
            if kernels is not None and array.rank == 1:
                idx, slots = dims[0]
                scatter_slots(local, slots, gather_slots(values, idx, kernels),
                              kernels)
            else:
                local[np.ix_(*[slots for _, slots in dims])] = values[
                    np.ix_(*[idx for idx, _ in dims])
                ]
            proc = vm.processors[rank]
            proc.allocate(array.name, local.size, dtype=values.dtype)
            proc.memory(array.name)[:] = local.reshape(-1)


def collect(
    vm: VirtualMachine,
    array: DistributedArray,
    dtype=np.float64,
    native: bool | None = None,
) -> np.ndarray:
    """Gather per-rank local memories back into one host image.

    Replicated elements are taken from the lowest owning rank; the
    integration tests separately assert replica coherence.  Vectorized
    like :func:`distribute`: one cross-product fancy-index per
    contributing rank instead of a per-element ownership sweep (and the
    compiled gather/scatter pair for rank-1 arrays under ``native``).
    """
    _check_vm(vm, array)
    out = np.zeros(array.shape, dtype=dtype)
    kernels = kernels_for(native)
    with vm.obs.span("collect", array=array.name):
        for rank in range(array.grid.size):
            if not _is_lowest_owner(array, rank):
                continue
            dims = _dim_images(array, rank)
            local = vm.processors[rank].memory(array.name).reshape(
                array.local_shape(rank)
            )
            if kernels is not None and array.rank == 1:
                idx, slots = dims[0]
                scatter_slots(out, idx, gather_slots(local, slots, kernels),
                              kernels)
            else:
                out[np.ix_(*[idx for idx, _ in dims])] = local[
                    np.ix_(*[slots for _, slots in dims])
                ]
    return out


def distribute_reference(
    vm: VirtualMachine, array: DistributedArray, values: np.ndarray
) -> None:
    """Element-at-a-time :func:`distribute` (the original ``np.ndindex``
    sweep), kept as the oracle the property tests and the kernel
    benchmarks compare the vectorized path against."""
    ambient().inc("kernels.scalar_path_calls")
    _check_vm(vm, array)
    values = np.asarray(values)
    if values.shape != array.shape:
        raise ValueError(
            f"host image shape {values.shape} != array shape {array.shape}"
        )
    for rank in range(array.grid.size):
        local = np.zeros(array.local_size(rank), dtype=values.dtype)
        for idx in np.ndindex(*array.shape):
            if array.is_local(idx, rank):
                local[array.local_address(idx, rank)] = values[idx]
        proc = vm.processors[rank]
        proc.allocate(array.name, len(local), dtype=values.dtype)
        proc.memory(array.name)[:] = local


def collect_reference(
    vm: VirtualMachine, array: DistributedArray, dtype=np.float64
) -> np.ndarray:
    """Element-at-a-time :func:`collect` (the original per-element
    ownership sweep), kept as the oracle for the vectorized path."""
    ambient().inc("kernels.scalar_path_calls")
    _check_vm(vm, array)
    out = np.zeros(array.shape, dtype=dtype)
    for idx in np.ndindex(*array.shape):
        rank = array.owners(idx)[0]
        out[idx] = vm.processors[rank].memory(array.name)[array.local_address(idx, rank)]
    return out


def execute_fill(
    vm: VirtualMachine,
    array: DistributedArray,
    sections: tuple[RegularSection, ...],
    value,
    shape: str = "d",
    native: bool | None = None,
) -> int:
    """Run ``A(sections) = value`` on every rank; returns elements written.

    Rank-1 arrays use the requested node-code shape directly (the
    paper's Figure 8 experiment); multidimensional arrays traverse the
    per-dimension plans with vectorized address materialization (outer
    dims) around the requested shape is not meaningful there, so they
    always use the vectorized path.  ``native`` selects the compiled
    node-code kernels (:mod:`repro.runtime.native`) for both cases,
    falling back to the interpreter/NumPy paths bit-identically.
    """
    _check_vm(vm, array)
    if len(sections) != array.rank:
        raise ValueError(
            f"need {array.rank} sections for {array.name}, got {len(sections)}"
        )
    fill = get_shape(shape, native=native)
    kernels = kernels_for(native)
    total = 0
    with vm.obs.span("execute_fill", array=array.name, shape=shape):
        if array.rank == 1:
            for rank in range(array.grid.size):
                plan = cached_array_plan(array, 0, sections[0], rank)
                if plan.is_empty:
                    continue
                if shape == "d" and plan.start_offset is None:
                    raise ValueError(
                        "shape 'd' requires identity alignment; use shapes a/b/c/v"
                    )
                memory = vm.processors[rank].memory(array.name)
                total += fill(memory, plan, value)
            return total
        replicated = any(
            array.is_replicated_over_axis(axis) for axis in range(array.grid.rank)
        )
        for rank in range(array.grid.size):
            memory = vm.processors[rank].memory(array.name)
            if replicated:
                # Slow path: per-element ownership bookkeeping so each logical
                # element is counted once (at its lowest owner) even though it
                # is written on every holding rank.
                pairs = array.local_section_elements(sections, rank)
                for idx, addr in pairs:
                    memory[addr] = value
                total += sum(1 for idx, _ in pairs if array.owners(idx)[0] == rank)
            else:
                # Fast path (the Section-2 reduction, vectorized): outer-sum of
                # the per-dimension 1-D slot vectors, one fancy-indexed store
                # (compiled when the native kernels can serve it).
                addrs = flat_local_addresses(array, sections, rank)
                if len(addrs):
                    if (kernels is None
                            or kernels.fill_indexed(memory, addrs, value) is None):
                        memory[addrs] = value
                total += len(addrs)
    return total


def execute_copy(
    vm: VirtualMachine,
    a: DistributedArray,
    sec_a: RegularSection,
    b: DistributedArray,
    sec_b: RegularSection,
    schedule: CommSchedule | None = None,
    native: bool | None = None,
) -> CommSchedule:
    """Run ``A(sec_a) = B(sec_b)`` with generated communication.

    Three supersteps: local copies + packed sends, then delivery, then
    unpack into LHS local memory.  A precomputed ``schedule`` may be
    passed (the compile-time-constants case the paper discusses);
    otherwise one comes from the plan cache (repeated statements over
    identically mapped operands reuse the schedule object).  ``native``
    routes the pack/unpack hot loops through the compiled
    gather/scatter kernels (:mod:`repro.runtime.native`).
    """
    _check_vm(vm, a)
    _check_vm(vm, b)
    if schedule is None:
        with vm.obs.span("schedule", statement="copy"):
            schedule = cached_comm_schedule(a, sec_a, b, sec_b)
    tag = ("copy", a.name, b.name)
    kernels = kernels_for(native)

    # Fortran semantics: the RHS is read in full before any element is
    # stored.  All payloads -- remote sends AND local copies -- are
    # gathered (fancy indexing copies) before the first write, so
    # aliased self-copies like A(0:n-2) = A(1:n-1) stay correct.
    # Ranks beyond an operand's grid (elastic machines run with
    # vm.p >= grid.size) hold no shard of it and skip its phase.
    def pack_phase(ctx):
        if ctx.rank >= b.grid.size:
            return
        src_mem = ctx.memory(b.name)
        for tr in schedule.sends_from(ctx.rank):
            ctx.send(tr.dest, tag, gather_slots(src_mem, tr.src_slots, kernels))
        staged = [
            (tr, gather_slots(src_mem, tr.src_slots, kernels))
            for tr in schedule.locals_
            if tr.source == ctx.rank
        ]
        if staged:
            dst_mem = ctx.memory(a.name)
            for tr, values in staged:
                scatter_slots(dst_mem, tr.dst_slots, values, kernels)

    def unpack_phase(ctx):
        if ctx.rank >= a.grid.size:
            return
        dst_mem = ctx.memory(a.name)
        for tr in schedule.receives_at(ctx.rank):
            payload = ctx.recv(tr.source, tag)
            scatter_slots(dst_mem, tr.dst_slots, payload, kernels)

    with vm.obs.span("execute_copy", array=a.name, rhs=b.name):
        vm.bsp(pack_phase, unpack_phase)
    return schedule


def execute_combine(
    vm: VirtualMachine,
    a: DistributedArray,
    sec_a: RegularSection,
    terms: list[tuple[float, DistributedArray, RegularSection]],
    schedules: list[CommSchedule] | None = None,
) -> list[CommSchedule]:
    """Run ``A(sec_a) = sum_t coef_t * T_t(sec_t)`` with communication.

    Each term contributes one communication schedule (identical in shape
    to :func:`execute_copy`'s); destination slots are zeroed once and
    every arriving contribution accumulates scaled.  Aliasing is safe:
    a term may read from ``A`` itself (e.g. ``A(1:n-2) = 0.5*A(0:n-3) +
    0.5*A(2:n-1)``) because each rank stages its local contributions
    before zeroing its destination slots, and remote payloads are packed
    from every rank's memory before any destination is zeroed on that
    rank.

    Pass precomputed ``schedules`` (one per term, in order) to skip the
    compile-time set generation, as with :func:`execute_copy`.
    """
    _check_vm(vm, a)
    if not terms:
        raise ValueError("need at least one term")
    for _, src, _ in terms:
        _check_vm(vm, src)
    if schedules is None:
        schedules = [
            cached_comm_schedule(a, sec_a, src, sec_src)
            for _, src, sec_src in terms
        ]
    if len(schedules) != len(terms):
        raise ValueError(
            f"need one schedule per term: {len(terms)} terms, "
            f"{len(schedules)} schedules"
        )

    # Destination slots owned by each rank (zeroed exactly once).
    dim_a = a._dims[0]
    dst_slots_by_rank: dict[int, np.ndarray] = {
        rank: cached_localized_arrays(
            dim_a.layout.p, dim_a.layout.k, dim_a.extent,
            dim_a.axis_map.alignment, sec_a, rank,
        )[1]
        for rank in range(a.grid.size)
    }

    def tag(t: int) -> tuple:
        return ("combine", a.name, t)

    def pack_phase(ctx):
        staged = []
        for t, ((coef, src, _), sched) in enumerate(zip(terms, schedules)):
            if ctx.rank >= src.grid.size:
                continue
            src_mem = ctx.memory(src.name)
            for tr in sched.sends_from(ctx.rank):
                payload = src_mem[as_index(tr.src_slots)].copy()
                ctx.send(tr.dest, tag(t), payload)
            for tr in sched.locals_:
                if tr.source == ctx.rank:
                    values = src_mem[as_index(tr.src_slots)].copy()
                    staged.append((coef, tr.dst_slots, values))
        if ctx.rank >= a.grid.size:
            return
        dst_mem = ctx.memory(a.name)
        dst_mem[dst_slots_by_rank[ctx.rank]] = 0.0
        for coef, dst_slots, values in staged:
            np.add.at(
                dst_mem, as_index(dst_slots), coef * values
            )

    def unpack_phase(ctx):
        if ctx.rank >= a.grid.size:
            return
        dst_mem = ctx.memory(a.name)
        for t, ((coef, _, _), sched) in enumerate(zip(terms, schedules)):
            for tr in sched.receives_at(ctx.rank):
                payload = ctx.recv(tr.source, tag(t))
                np.add.at(
                    dst_mem, as_index(tr.dst_slots),
                    coef * payload,
                )

    with vm.obs.span("execute_combine", array=a.name, terms=len(terms)):
        vm.bsp(pack_phase, unpack_phase)
    return schedules


def execute_copy_2d(
    vm: VirtualMachine,
    a: DistributedArray,
    secs_a,
    b: DistributedArray,
    secs_b,
    schedule=None,
    rhs_dims: tuple[int, int] = (0, 1),
    native: bool | None = None,
):
    """Run the 2-D statement ``A(secs_a) = B(secs_b)`` with communication.

    The tensor-product schedule of
    :func:`repro.runtime.commsets2d.compute_comm_schedule_2d`; the same
    pack / exchange / unpack supersteps (and ``native`` pack/unpack
    dispatch) as :func:`execute_copy`.  ``rhs_dims=(1, 0)`` pairs LHS
    dimension 0 with RHS dimension 1 -- the distributed transpose (see
    :func:`execute_transpose`).
    """
    _check_vm(vm, a)
    _check_vm(vm, b)
    if schedule is None:
        schedule = cached_comm_schedule_2d(
            a, tuple(secs_a), b, tuple(secs_b), rhs_dims
        )
    tag = ("copy2d", a.name, b.name)
    kernels = kernels_for(native)

    # Read-before-write staging, as in execute_copy (a rank may carry
    # several local transfers in 2-D, so all are gathered first).
    def pack_phase(ctx):
        if ctx.rank >= b.grid.size:
            return
        src_mem = ctx.memory(b.name)
        for tr in schedule.sends_from(ctx.rank):
            ctx.send(tr.dest, tag, gather_slots(src_mem, tr.src_slots, kernels))
        staged = [
            (tr, gather_slots(src_mem, tr.src_slots, kernels))
            for tr in schedule.locals_
            if tr.source == ctx.rank
        ]
        if staged:
            dst_mem = ctx.memory(a.name)
            for tr, values in staged:
                scatter_slots(dst_mem, tr.dst_slots, values, kernels)

    def unpack_phase(ctx):
        if ctx.rank >= a.grid.size:
            return
        dst_mem = ctx.memory(a.name)
        for tr in schedule.receives_at(ctx.rank):
            payload = ctx.recv(tr.source, tag)
            scatter_slots(dst_mem, tr.dst_slots, payload, kernels)

    with vm.obs.span("execute_copy_2d", array=a.name, rhs=b.name):
        vm.bsp(pack_phase, unpack_phase)
    return schedule


def execute_transpose(
    vm: VirtualMachine,
    a: DistributedArray,
    b: DistributedArray,
    schedule=None,
):
    """Distributed transpose: ``A(i, j) = B(j, i)`` over whole arrays.

    The classic communication-intensive array statement; requires
    ``A.shape == (B.shape[1], B.shape[0])``.  Built on the transposed
    tensor-product schedule (``rhs_dims=(1, 0)``).
    """
    if a.rank != 2 or b.rank != 2:
        raise ValueError("transpose requires rank-2 arrays")
    if a.shape != (b.shape[1], b.shape[0]):
        raise ValueError(
            f"shape mismatch for transpose: {a.name}{list(a.shape)} vs "
            f"{b.name}{list(b.shape)}^T"
        )
    secs_a = (
        RegularSection(0, a.shape[0] - 1, 1),
        RegularSection(0, a.shape[1] - 1, 1),
    )
    secs_b = (
        RegularSection(0, b.shape[0] - 1, 1),
        RegularSection(0, b.shape[1] - 1, 1),
    )
    return execute_copy_2d(vm, a, secs_a, b, secs_b, schedule, rhs_dims=(1, 0))
