"""Block-cyclic redistribution: change ``cyclic(k1)`` into ``cyclic(k2)``.

The canonical runtime operation over block-cyclic arrays (and the
reason ScaLAPACK-era libraries cared about cyclic(k) in the first
place): move a whole array between two different mappings.  This is the
degenerate array statement ``B(0:n-1) = A(0:n-1)`` with different
descriptors on the two sides, so the access-sequence machinery gives
the communication sets directly; this module adds the convenience
wrapper, schedule statistics, and a traffic-matrix view the benchmarks
and examples report.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..distribution.array import DistributedArray
from ..distribution.section import RegularSection
from ..machine.vm import VirtualMachine
from .commsets import CommSchedule
from .exec import execute_copy
from .plancache import cached_comm_schedule

__all__ = [
    "RedistributionStats",
    "plan_redistribution",
    "redistribute",
    "stats_from_schedule",
    "traffic_matrix",
]


@dataclass(frozen=True, slots=True)
class RedistributionStats:
    """Aggregate cost figures of a redistribution schedule."""

    elements: int
    local_elements: int
    remote_elements: int
    messages: int
    max_fan_out: int  # most destinations any single sender talks to

    @property
    def locality(self) -> float:
        """Fraction of elements that do not cross the network."""
        return self.local_elements / self.elements if self.elements else 1.0


def _full_section(array: DistributedArray) -> RegularSection:
    if array.rank != 1:
        raise ValueError(f"{array.name} must be rank-1 for redistribution")
    return RegularSection(0, array.shape[0] - 1, 1)


def stats_from_schedule(schedule: CommSchedule) -> RedistributionStats:
    """Derive the aggregate cost figures from an existing schedule --
    an O(#transfers) summary, not a replanning."""
    fan_out: dict[int, int] = {}
    for tr in schedule.transfers:
        fan_out[tr.source] = fan_out.get(tr.source, 0) + 1
    return RedistributionStats(
        elements=schedule.total_elements,
        local_elements=schedule.total_elements - schedule.communicated_elements,
        remote_elements=schedule.communicated_elements,
        messages=len(schedule.transfers),
        max_fan_out=max(fan_out.values(), default=0),
    )


def plan_redistribution(
    dst: DistributedArray, src: DistributedArray
) -> tuple[CommSchedule, RedistributionStats]:
    """Communication schedule + statistics for ``dst = src`` (whole
    arrays; equal global sizes required)."""
    if dst.shape != src.shape:
        raise ValueError(
            f"shape mismatch: {dst.name}{list(dst.shape)} vs "
            f"{src.name}{list(src.shape)}"
        )
    schedule = cached_comm_schedule(dst, _full_section(dst), src, _full_section(src))
    return schedule, stats_from_schedule(schedule)


def redistribute(
    vm: VirtualMachine,
    dst: DistributedArray,
    src: DistributedArray,
    schedule: CommSchedule | None = None,
) -> RedistributionStats:
    """Execute ``dst = src`` on the machine; returns the statistics.

    With a precomputed ``schedule`` (the compile-time-constants case)
    the statistics are summarized from that schedule directly -- the
    full communication plan is not recomputed.
    """
    if schedule is None:
        schedule, stats = plan_redistribution(dst, src)
    else:
        stats = stats_from_schedule(schedule)
    execute_copy(vm, dst, _full_section(dst), src, _full_section(src), schedule)
    return stats


def traffic_matrix(schedule: CommSchedule, p: int) -> np.ndarray:
    """``p x p`` element-count matrix: entry ``[q, r]`` is the number of
    elements rank ``q`` sends rank ``r`` (diagonal = local copies)."""
    matrix = np.zeros((p, p), dtype=np.int64)
    for tr in schedule.locals_ + schedule.transfers:
        matrix[tr.source, tr.dest] += len(tr)
    return matrix
