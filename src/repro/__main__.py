"""Command-line entry point: ``python -m repro <command>``.

Commands map one-to-one onto the paper's evaluation artifacts::

    python -m repro demo       # the Section-5 worked example
    python -m repro table1     # Table 1  (add --quick for one rank)
    python -m repro figure7    # Figure 7
    python -m repro table2     # Table 2
    python -m repro ablations  # DESIGN.md ablations A1-A3
    python -m repro opcounts   # platform-independent operation counts
    python -m repro claims     # Section 6.1 sensitivity claims
    python -m repro trace      # run instrumented programs, export traces
    python -m repro profile    # measured superstep profiles + calibration

Plus the long-running planning service (ROADMAP item 3)::

    python -m repro serve        # the crash-safe planning server
    python -m repro plan-client  # query a running server from the shell

Remaining arguments are forwarded to the selected harness.
"""

from __future__ import annotations

import sys

COMMANDS = {
    "table1": "repro.bench.table1",
    "figure7": "repro.bench.figure7",
    "table2": "repro.bench.table2",
    "ablations": "repro.bench.ablations",
    "opcounts": "repro.bench.opcounts",
    "claims": "repro.bench.claims",
    "costs": "repro.bench.costs",
    "table2c": "repro.bench.table2_c",
    "table1c": "repro.bench.table1_c",
    "trace": "repro.obs.cli",
    "profile": "repro.obs.profilecli",
    # "module:function" targets call that function instead of main().
    "serve": "repro.service.cli:serve_main",
    "plan-client": "repro.service.cli:client_main",
}


def demo() -> None:
    """Print the paper's worked example end to end."""
    from repro.core import compute_access_table, compute_rl_basis
    from repro.viz import describe_basis, render_walk

    print("Kennedy, Nedeljkovic & Sethi (PPoPP 1995) -- worked example")
    print("p=4 processors, cyclic(8), section A(4::9), processor m=1\n")
    table = compute_access_table(4, 8, 4, 9, 1)
    print(f"start = {table.start}, length = {table.length}")
    print(f"AM    = {list(table.gaps)}")
    print(describe_basis(4, 8, 9))
    print()
    print(render_walk(4, 8, 4, 9, 1, 320))


def main(argv: list[str] | None = None) -> int:
    argv = sys.argv[1:] if argv is None else argv
    if not argv or argv[0] in ("-h", "--help"):
        print(__doc__)
        return 0
    command, rest = argv[0], argv[1:]
    if command == "demo":
        demo()
        return 0
    if command not in COMMANDS:
        print(f"unknown command {command!r}; choose from "
              f"{['demo', *COMMANDS]}", file=sys.stderr)
        return 2
    import importlib

    target = COMMANDS[command]
    module_name, _, func_name = target.partition(":")
    module = importlib.import_module(module_name)
    entry = getattr(module, func_name) if func_name else module.main
    result = entry(rest)
    return result if isinstance(result, int) else 0


if __name__ == "__main__":
    raise SystemExit(main())
