"""Text diagrams of the section lattice and its R/L basis (Figures 2-4).

Renders the ``(offset, row)`` plane with lattice points marked, plus a
summary of the basis vectors the Section-4 construction selects.  The
plane is drawn row 0 at the top (matching the paper's layout pictures):
``*`` lattice points, ``R``/``L`` the basis targets reached from an
anchor ``O``.
"""

from __future__ import annotations

from ..core.lattice import SectionLattice, compute_rl_basis

__all__ = ["render_lattice_plane", "describe_basis"]


def render_lattice_plane(p: int, k: int, s: int, rows: int) -> str:
    """Mark every lattice point with row < ``rows`` on the plane.

    Columns are the ``p*k`` row offsets with ``|`` separators at block
    boundaries; ``*`` marks a point of the lattice ``{(b, a):
    pk*a + b = i*s}`` (equivalently: element ``a*pk + b`` is a multiple
    of ``s`` position in the section with ``l = 0``).
    """
    if rows <= 0:
        raise ValueError(f"need a positive row count, got {rows}")
    lattice = SectionLattice(p, k, s)
    pk = lattice.row_length
    members: set[tuple[int, int]] = set()
    i = 0
    while True:
        pt = lattice.point(i)
        if pt.a >= rows:
            break
        members.add((pt.b, pt.a))
        i += 1
    lines = []
    for a in range(rows):
        cells = []
        for m in range(p):
            block = "".join(
                "*" if (m * k + off, a) in members else "."
                for off in range(k)
            )
            cells.append(block)
        lines.append("|".join(cells))
    return "\n".join(lines)


def describe_basis(p: int, k: int, s: int) -> str:
    """Human-readable summary of the R/L basis (Figure 3's caption)."""
    basis = compute_rl_basis(p, k, s)
    r, l = basis.r, basis.l
    return (
        f"R = ({r.b}, {r.a}) from section index {r.i} (element {r.i * s}); "
        f"L = ({l.b}, {l.a}) from section index {l.i} (element {l.i * s}); "
        f"determinant a_r*i_l - a_l*i_r = {r.a * l.i - l.a * r.i}"
    )
