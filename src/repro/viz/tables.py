"""Tabular renderings: AM tables, traffic heatmaps, metric summaries.

Complements the layout pictures: `render_am_tables` prints the paper's
AM table for every processor (the §6.1 observation that gcd(s,pk)=1
makes them cyclic shifts of one another is visible directly), and
`render_traffic` draws a sender×receiver element-count heatmap for a
communication schedule.  `render_metrics` and `render_span_stats` are
the text backends of the observability summary
(:func:`repro.obs.export.summary`, docs/OBSERVABILITY.md).
"""

from __future__ import annotations

import numpy as np

from ..core.access import compute_access_table

__all__ = [
    "render_am_tables",
    "render_metrics",
    "render_profile",
    "render_span_stats",
    "render_traffic",
]


def render_am_tables(p: int, k: int, l: int, s: int) -> str:
    """One line per processor: start location, start local address, and
    the ΔM gap table."""
    lines = [f"AM tables for p={p}, cyclic({k}), section l={l}, s={s}:"]
    width = len(str(p - 1))
    for m in range(p):
        table = compute_access_table(p, k, l, s, m)
        if table.is_empty:
            lines.append(f"  m={m:<{width}}  (owns no section elements)")
            continue
        lines.append(
            f"  m={m:<{width}}  start={table.start:<6} local={table.start_local:<5} "
            f"AM={list(table.gaps)}"
        )
    return "\n".join(lines)


def render_metrics(snapshot: dict, plan_caches: dict | None = None) -> str:
    """Table of a metric-registry snapshot (`MetricsRegistry.snapshot`):
    counters and gauges one per line, histograms as count/mean/max
    bucket, optionally followed by the plan-cache hit/miss block."""
    lines = ["metrics:"]
    counters = snapshot.get("counters", {})
    gauges = snapshot.get("gauges", {})
    histograms = snapshot.get("histograms", {})
    if not (counters or gauges or histograms):
        lines.append("  (none recorded -- observability disabled?)")
    width = max((len(n) for n in (*counters, *gauges, *histograms)), default=0)
    for name, value in counters.items():
        lines.append(f"  {name:<{width}}  {value}")
    for name, value in gauges.items():
        lines.append(f"  {name:<{width}}  {value} (gauge)")
    for name, h in histograms.items():
        if h["count"] == 0:
            # observations == 0 guard: an instrument that exists but
            # never observed must not render misleading zero rows.
            lines.append(f"  {name:<{width}}  (no observations)")
            continue
        lines.append(
            f"  {name:<{width}}  n={h['count']} mean={h['mean']:.1f} "
            f"total={h['total']}"
        )
    if plan_caches:
        lines.append("plan caches (hits/misses/evictions, entries):")
        cw = max(len(n) for n in plan_caches)
        for name, st in sorted(plan_caches.items()):
            lines.append(
                f"  {name:<{cw}}  {st['hits']}/{st['misses']}"
                f"/{st.get('evictions', 0)}  "
                f"{st['entries']}/{st['maxsize']} entries"
            )
    return "\n".join(lines)


def render_profile(rows: list[dict], *, title: str = "superstep profile") -> str:
    """Per-superstep predicted-vs-measured table.

    ``rows`` are dicts with ``step``, ``phase``, ``messages``,
    ``bytes``, ``predicted_us`` (default-model), optional
    ``calibrated_us``, and ``measured_us`` (``None`` when the span fell
    out of the bounded trace ring).  Residual shown is measured minus
    the best available prediction (calibrated when present).
    """
    lines = [f"{title} (predicted vs measured):"]
    if not rows:
        lines.append("  (no supersteps profiled)")
        return "\n".join(lines)
    has_calibrated = any(r.get("calibrated_us") is not None for r in rows)
    phase_width = max(5, max(len(str(r.get("phase") or "-")) for r in rows))
    header = (
        f"  {'step':>4}  {'phase':<{phase_width}}  {'msgs':>6}  {'bytes':>10}  "
        f"{'model us':>10}"
    )
    if has_calibrated:
        header += f"  {'calib us':>10}"
    header += f"  {'meas us':>10}  {'resid us':>10}"
    lines.append(header)
    for r in rows:
        phase = str(r.get("phase") or "-")
        measured = r.get("measured_us")
        predicted = r.get("calibrated_us") if has_calibrated else r.get("predicted_us")
        line = (
            f"  {r['step']:>4}  {phase:<{phase_width}}  {r['messages']:>6}  "
            f"{r['bytes']:>10}  {r['predicted_us']:>10.1f}"
        )
        if has_calibrated:
            calibrated = r.get("calibrated_us")
            line += f"  {calibrated:>10.1f}" if calibrated is not None else f"  {'-':>10}"
        if measured is None:
            line += f"  {'-':>10}  {'-':>10}"
        else:
            residual = measured - (predicted if predicted is not None else 0.0)
            line += f"  {measured:>10.1f}  {residual:>+10.1f}"
        lines.append(line)
    return "\n".join(lines)


def render_span_stats(rows: list[dict]) -> str:
    """Profile table of per-span-name aggregates
    (:func:`repro.obs.export.span_stats` rows)."""
    lines = ["spans (by total time):"]
    if not rows:
        lines.append("  (no spans recorded)")
        return "\n".join(lines)
    width = max(len(r["name"]) for r in rows)
    lines.append(
        f"  {'name':<{width}}  {'count':>7}  {'total ms':>10}  "
        f"{'mean ms':>9}  {'max ms':>9}"
    )
    for r in rows:
        lines.append(
            f"  {r['name']:<{width}}  {r['count']:>7}  {r['total_ms']:>10.3f}  "
            f"{r['mean_ms']:>9.4f}  {r['max_ms']:>9.4f}"
        )
    return "\n".join(lines)


#: Shade ramp for the heatmap, lightest to darkest.
_SHADES = " .:-=+*#%@"


def render_traffic(matrix: np.ndarray, *, label: str = "elements") -> str:
    """ASCII heatmap of a sender×receiver traffic matrix.

    Cell glyph encodes the count relative to the matrix maximum; exact
    row/column totals are annotated so the picture stays quantitative.
    """
    matrix = np.asarray(matrix)
    if matrix.ndim != 2 or matrix.shape[0] != matrix.shape[1]:
        raise ValueError(f"need a square matrix, got shape {matrix.shape}")
    p = matrix.shape[0]
    peak = int(matrix.max()) if matrix.size else 0
    lines = [f"traffic ({label}; senders down, receivers across; max={peak}):"]
    header = "      " + "".join(f"{r:>4}" for r in range(p))
    lines.append(header)
    for q in range(p):
        cells = []
        for r in range(p):
            value = int(matrix[q, r])
            if peak == 0 or value == 0:
                glyph = _SHADES[0]
            else:
                idx = min(len(_SHADES) - 1,
                          1 + value * (len(_SHADES) - 2) // peak)
                glyph = _SHADES[idx]
            cells.append(f"   {glyph}")
        lines.append(f"{q:>4} |" + "".join(cells) + f"   | sent {int(matrix[q].sum())}")
    lines.append(
        "recv  " + "".join(f"{int(matrix[:, r].sum()):>4}" for r in range(p))
    )
    return "\n".join(lines)
