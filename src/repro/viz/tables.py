"""Tabular renderings: per-processor AM tables and traffic heatmaps.

Complements the layout pictures: `render_am_tables` prints the paper's
AM table for every processor (the §6.1 observation that gcd(s,pk)=1
makes them cyclic shifts of one another is visible directly), and
`render_traffic` draws a sender×receiver element-count heatmap for a
communication schedule.
"""

from __future__ import annotations

import numpy as np

from ..core.access import compute_access_table

__all__ = ["render_am_tables", "render_traffic"]


def render_am_tables(p: int, k: int, l: int, s: int) -> str:
    """One line per processor: start location, start local address, and
    the ΔM gap table."""
    lines = [f"AM tables for p={p}, cyclic({k}), section l={l}, s={s}:"]
    width = len(str(p - 1))
    for m in range(p):
        table = compute_access_table(p, k, l, s, m)
        if table.is_empty:
            lines.append(f"  m={m:<{width}}  (owns no section elements)")
            continue
        lines.append(
            f"  m={m:<{width}}  start={table.start:<6} local={table.start_local:<5} "
            f"AM={list(table.gaps)}"
        )
    return "\n".join(lines)


#: Shade ramp for the heatmap, lightest to darkest.
_SHADES = " .:-=+*#%@"


def render_traffic(matrix: np.ndarray, *, label: str = "elements") -> str:
    """ASCII heatmap of a sender×receiver traffic matrix.

    Cell glyph encodes the count relative to the matrix maximum; exact
    row/column totals are annotated so the picture stays quantitative.
    """
    matrix = np.asarray(matrix)
    if matrix.ndim != 2 or matrix.shape[0] != matrix.shape[1]:
        raise ValueError(f"need a square matrix, got shape {matrix.shape}")
    p = matrix.shape[0]
    peak = int(matrix.max()) if matrix.size else 0
    lines = [f"traffic ({label}; senders down, receivers across; max={peak}):"]
    header = "      " + "".join(f"{r:>4}" for r in range(p))
    lines.append(header)
    for q in range(p):
        cells = []
        for r in range(p):
            value = int(matrix[q, r])
            if peak == 0 or value == 0:
                glyph = _SHADES[0]
            else:
                idx = min(len(_SHADES) - 1,
                          1 + value * (len(_SHADES) - 2) // peak)
                glyph = _SHADES[idx]
            cells.append(f"   {glyph}")
        lines.append(f"{q:>4} |" + "".join(cells) + f"   | sent {int(matrix[q].sum())}")
    lines.append(
        "recv  " + "".join(f"{int(matrix[:, r].sum()):>4}" for r in range(p))
    )
    return "\n".join(lines)
