"""ASCII reproductions of the paper's illustrations (Figures 1-4, 6)."""

from .lattice_diagram import describe_basis, render_lattice_plane
from .layout_ascii import processor_header, render_layout, render_walk
from .tables import (
    render_am_tables,
    render_metrics,
    render_span_stats,
    render_traffic,
)

__all__ = [
    "render_layout",
    "render_walk",
    "processor_header",
    "render_lattice_plane",
    "describe_basis",
    "render_am_tables",
    "render_metrics",
    "render_span_stats",
    "render_traffic",
]
