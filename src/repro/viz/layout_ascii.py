"""ASCII reproduction of the paper's layout figures (Figures 1, 2, 4, 6).

The paper illustrates the ``cyclic(k)`` layout as a matrix of element
indices, rows of ``p*k`` split into per-processor blocks, with section
elements boxed and the lower bound circled.  These renderers produce the
same pictures in text:

* plain element        ``108``
* section element      ``[108]``
* section lower bound  ``(4)``
* walk-visited point   ``{13}``   (Figure 6's rectangles)

Used by the ``layout_gallery`` example and asserted structurally by the
viz tests.
"""

from __future__ import annotations

from collections.abc import Collection

from ..distribution.layout import CyclicLayout
from ..distribution.section import RegularSection

__all__ = ["render_layout", "render_walk", "processor_header"]


def processor_header(p: int, k: int, cell_width: int) -> str:
    """The ``Processor 0 | Processor 1 | ...`` banner line."""
    block_width = k * (cell_width + 1) - 1
    parts = []
    for m in range(p):
        label = f"Processor {m}"
        parts.append(label.center(block_width))
    return " | ".join(parts)


def _format_cell(
    index: int,
    section: RegularSection | None,
    visited: Collection[int],
    cell_width: int,
) -> str:
    text = str(index)
    if section is not None and not section.is_empty and index == section.normalized().lower:
        text = f"({text})"
    elif index in visited:
        text = f"{{{text}}}"
    elif section is not None and index in section:
        text = f"[{text}]"
    return text.rjust(cell_width)


def render_layout(
    p: int,
    k: int,
    n: int,
    section: RegularSection | None = None,
    visited: Collection[int] = (),
) -> str:
    """Render ``n`` elements laid out ``cyclic(k)`` over ``p`` processors.

    With ``section`` given, its elements are bracketed and its lower
    bound parenthesized (Figure 1's rectangles and circle); ``visited``
    marks algorithm-walk points with braces (Figure 6).
    """
    if n <= 0:
        raise ValueError(f"need a positive element count, got {n}")
    layout = CyclicLayout(p, k)
    pk = layout.row_length
    cell_width = len(str(n - 1)) + 2  # room for brackets
    visited = set(visited)
    lines = [processor_header(p, k, cell_width)]
    for row_start in range(0, n, pk):
        cells = []
        for m in range(p):
            block = []
            for offset in range(k):
                index = row_start + m * k + offset
                if index < n:
                    block.append(_format_cell(index, section, visited, cell_width))
                else:
                    block.append(" " * cell_width)
            cells.append(" ".join(block))
        lines.append(" | ".join(cells))
    return "\n".join(lines)


def render_walk(p: int, k: int, l: int, s: int, m: int, n: int) -> str:
    """Figure 6: the points the algorithm visits for processor ``m``.

    Marks every section element in ``[0, n)`` with brackets and the
    subset the Figure 5 walk touches on processor ``m`` (owned elements
    of the initial cycle plus any Equation-3 overshoot points) with
    braces; the lower bound is parenthesized.
    """
    from ..core.access import compute_access_table

    table = compute_access_table(p, k, l, s, m)
    visited: list[int] = []
    if not table.is_empty:
        idx = table.start
        visited.append(idx)
        for t in range(table.length):
            idx += table.index_gaps[t]
            if idx < n:
                visited.append(idx)
    section = RegularSection(l, n - 1, s)
    return render_layout(p, k, n, section=section, visited=visited)
