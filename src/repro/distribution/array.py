"""Multidimensional distributed-array descriptors (paper Sections 1-2).

In HPF, alignments and distributions of each array dimension are
independent of one another (paper Section 2), so a multidimensional
array is described by one :class:`AxisMap` per dimension -- an affine
alignment onto a template axis plus a distribution format onto one axis
of the processor grid -- and "the memory access problem simply reduces
to multiple applications of the algorithm for the one-dimensional
case."  :class:`DistributedArray` holds that per-dimension machinery
and provides global<->local translation for whole index tuples.

Local storage is row-major over the per-dimension *compressed* local
slots (the rank of the element among the array's elements on that
processor along that axis), which is how HPF compilers lay out
block-cyclic local arrays.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from math import prod

from ..core.access import compute_access_table
from ..core.counting import local_count
from .align import IDENTITY, Alignment
from .dist import Collapsed, Distribution, ProcessorGrid, Replicated
from .layout import CyclicLayout
from .localize import LocalizedTable, RankFunction, localize_section
from .section import RegularSection

__all__ = ["AxisMap", "DistributedArray"]


@dataclass(frozen=True, slots=True)
class AxisMap:
    """Mapping of one array dimension.

    ``grid_axis`` selects the processor-grid axis the dimension is
    distributed over (``None`` for collapsed/replicated dimensions).
    ``template_extent`` optionally fixes the aligned template axis size;
    when omitted it is inferred from the alignment's image of the array
    extent.
    """

    distribution: Distribution
    alignment: Alignment = IDENTITY
    grid_axis: int | None = None
    template_extent: int | None = None

    def __post_init__(self) -> None:
        if self.distribution.partitions and self.grid_axis is None:
            raise ValueError(
                f"{self.distribution.describe()} dimension needs a grid_axis"
            )
        if not self.distribution.partitions and self.grid_axis is not None:
            raise ValueError(
                f"{self.distribution.describe()} dimension must not name a grid_axis"
            )


@dataclass
class _DimState:
    """Resolved per-dimension machinery (layout + rank caches)."""

    extent: int
    axis_map: AxisMap
    nprocs: int  # 1 for undistributed dims
    layout: CyclicLayout | None  # None for undistributed dims
    _ranks: dict[int, RankFunction | None] = field(default_factory=dict)

    def template_extent(self) -> int:
        if self.axis_map.template_extent is not None:
            return self.axis_map.template_extent
        alloc = self.axis_map.alignment.allocation_section(self.extent).normalized()
        return alloc.upper + 1

    def owner(self, index: int) -> int:
        """Owning coordinate along this dimension's grid axis."""
        if self.layout is None:
            return 0
        return self.layout.owner(self.axis_map.alignment.apply(index))

    def rank_function(self, coord: int) -> RankFunction | None:
        """Rank function over this dimension's allocation on ``coord``
        (``None`` when the processor holds no elements along this axis)."""
        if coord not in self._ranks:
            alloc = self.axis_map.alignment.allocation_section(self.extent).normalized()
            table = compute_access_table(
                self.layout.p, self.layout.k, alloc.lower, alloc.stride, coord
            )
            self._ranks[coord] = None if table.is_empty else RankFunction(table)
        return self._ranks[coord]

    def local_slot(self, index: int, coord: int) -> int:
        """Compressed local slot of ``index`` on grid coordinate ``coord``."""
        if self.layout is None:
            return index
        cell = self.axis_map.alignment.apply(index)
        if self.layout.owner(cell) != coord:
            raise ValueError(
                f"index {index} not owned by coordinate {coord} along this axis"
            )
        ranks = self.rank_function(coord)
        assert ranks is not None
        return ranks.rank(self.layout.local_address(cell))

    def local_extent(self, coord: int) -> int:
        """Number of array elements along this axis on coordinate ``coord``."""
        if self.layout is None:
            return self.extent
        alloc = self.axis_map.alignment.allocation_section(self.extent).normalized()
        return local_count(
            self.layout.p, self.layout.k, alloc.lower, alloc.upper, alloc.stride, coord
        )

    def global_index(self, slot: int, coord: int) -> int:
        """Inverse of :meth:`local_slot`."""
        if self.layout is None:
            return slot
        ranks = self.rank_function(coord)
        if ranks is None:
            raise ValueError(f"coordinate {coord} holds no elements along this axis")
        addr = ranks.unrank(slot)
        cell = self.layout.local_to_global(coord, addr)
        index = self.axis_map.alignment.invert(cell)
        assert index is not None
        return index


class DistributedArray:
    """A distributed multidimensional array descriptor.

    Parameters
    ----------
    name:
        Identifier used by the language front end and diagnostics.
    shape:
        Global extents, one per dimension.
    grid:
        The processor grid the partitioned dimensions map onto.  Every
        grid axis must be targeted by at most one dimension; untargeted
        axes replicate the array across that axis.
    axis_maps:
        One :class:`AxisMap` per dimension.
    """

    def __init__(
        self,
        name: str,
        shape: tuple[int, ...],
        grid: ProcessorGrid,
        axis_maps: tuple[AxisMap, ...],
    ) -> None:
        if not shape:
            raise ValueError("array must have at least one dimension")
        if any(extent <= 0 for extent in shape):
            raise ValueError(f"array extents must be positive, got {shape}")
        if len(axis_maps) != len(shape):
            raise ValueError(
                f"need one AxisMap per dimension: {len(shape)} dims, "
                f"{len(axis_maps)} maps"
            )
        used_axes = [am.grid_axis for am in axis_maps if am.grid_axis is not None]
        if len(set(used_axes)) != len(used_axes):
            raise ValueError(f"grid axes used more than once: {used_axes}")
        for axis in used_axes:
            if not 0 <= axis < grid.rank:
                raise ValueError(f"grid axis {axis} out of range [0, {grid.rank})")
        self.name = name
        self.shape = shape
        self.grid = grid
        self.axis_maps = axis_maps
        self._dims: list[_DimState] = []
        for extent, am in zip(shape, axis_maps):
            if am.distribution.partitions:
                nprocs = grid.shape[am.grid_axis]
                tmpl_extent = (
                    am.template_extent
                    if am.template_extent is not None
                    else am.alignment.allocation_section(extent).normalized().upper + 1
                )
                k = am.distribution.block_size(tmpl_extent, nprocs)
                layout = CyclicLayout(nprocs, k)
            else:
                nprocs, layout = 1, None
            self._dims.append(_DimState(extent, am, nprocs, layout))

    # ------------------------------------------------------------------
    # Shape / structural queries
    # ------------------------------------------------------------------

    @property
    def rank(self) -> int:
        return len(self.shape)

    @property
    def size(self) -> int:
        return prod(self.shape)

    def dim_layout(self, dim: int) -> CyclicLayout | None:
        """The resolved ``cyclic(k)`` layout of dimension ``dim`` (``None``
        for undistributed dimensions)."""
        return self._dims[dim].layout

    def descriptor(self) -> tuple:
        """Hashable layout descriptor: everything ownership and local
        addressing depend on, and nothing else (not the name).  Arrays
        with equal descriptors are interchangeable for plan and schedule
        construction, which is what the runtime's plan caches key on.
        """
        return (
            self.shape,
            self.grid.shape,
            tuple(
                (
                    dim.extent,
                    dim.axis_map.grid_axis,
                    dim.axis_map.alignment,
                    (dim.layout.p, dim.layout.k) if dim.layout is not None else None,
                )
                for dim in self._dims
            ),
        )

    def is_replicated_over_axis(self, axis: int) -> bool:
        return all(am.grid_axis != axis for am in self.axis_maps)

    def _check_index(self, index: tuple[int, ...]) -> None:
        if len(index) != self.rank:
            raise ValueError(f"expected {self.rank}-tuple index, got {index}")
        for i, extent in zip(index, self.shape):
            if not 0 <= i < extent:
                raise IndexError(f"index {index} outside shape {self.shape}")

    # ------------------------------------------------------------------
    # Ownership
    # ------------------------------------------------------------------

    def owner_coords(self, index: tuple[int, ...]) -> tuple[int | None, ...]:
        """Grid coordinates owning ``index``; ``None`` marks replicated
        axes (the element lives on every coordinate of that axis)."""
        self._check_index(index)
        coords: list[int | None] = [None] * self.grid.rank
        for i, dim in zip(index, self._dims):
            if dim.layout is not None:
                coords[dim.axis_map.grid_axis] = dim.owner(i)
        return tuple(coords)

    def owners(self, index: tuple[int, ...]) -> list[int]:
        """All ranks holding ``index`` (singleton unless replicated)."""
        coords = self.owner_coords(index)
        ranks: list[int] = []
        for r in range(self.grid.size):
            rc = self.grid.coordinates(r)
            if all(c is None or c == rc[axis] for axis, c in enumerate(coords)):
                ranks.append(r)
        return ranks

    def owner(self, index: tuple[int, ...]) -> int:
        """The unique owning rank; raises when the array is replicated
        over some grid axis (use :meth:`owners`)."""
        ranks = self.owners(index)
        if len(ranks) != 1:
            raise ValueError(
                f"{self.name}{list(index)} is replicated over {len(ranks)} ranks"
            )
        return ranks[0]

    def is_local(self, index: tuple[int, ...], rank: int) -> bool:
        coords = self.owner_coords(index)
        rc = self.grid.coordinates(rank)
        return all(c is None or c == rc[axis] for axis, c in enumerate(coords))

    # ------------------------------------------------------------------
    # Local addressing
    # ------------------------------------------------------------------

    def local_shape(self, rank: int) -> tuple[int, ...]:
        """Per-dimension local extents of the compressed local array."""
        rc = self.grid.coordinates(rank)
        out = []
        for dim in self._dims:
            coord = rc[dim.axis_map.grid_axis] if dim.layout is not None else 0
            out.append(dim.local_extent(coord))
        return tuple(out)

    def local_size(self, rank: int) -> int:
        return prod(self.local_shape(rank))

    def local_slots(self, index: tuple[int, ...], rank: int) -> tuple[int, ...]:
        """Per-dimension compressed local slots of ``index`` on ``rank``."""
        self._check_index(index)
        if not self.is_local(index, rank):
            raise ValueError(f"{self.name}{list(index)} is not local to rank {rank}")
        rc = self.grid.coordinates(rank)
        out = []
        for i, dim in zip(index, self._dims):
            coord = rc[dim.axis_map.grid_axis] if dim.layout is not None else 0
            out.append(dim.local_slot(i, coord))
        return tuple(out)

    def local_address(self, index: tuple[int, ...], rank: int) -> int:
        """Row-major flattened local address of ``index`` on ``rank``."""
        slots = self.local_slots(index, rank)
        shape = self.local_shape(rank)
        addr = 0
        for slot, extent in zip(slots, shape):
            addr = addr * extent + slot
        return addr

    def global_index(self, slots: tuple[int, ...], rank: int) -> tuple[int, ...]:
        """Inverse of :meth:`local_slots`."""
        if len(slots) != self.rank:
            raise ValueError(f"expected {self.rank}-tuple of slots, got {slots}")
        rc = self.grid.coordinates(rank)
        out = []
        for slot, dim in zip(slots, self._dims):
            coord = rc[dim.axis_map.grid_axis] if dim.layout is not None else 0
            out.append(dim.global_index(slot, coord))
        return tuple(out)

    # ------------------------------------------------------------------
    # Access sequences (the paper's machinery, per dimension)
    # ------------------------------------------------------------------

    def dim_access(self, dim: int, section: RegularSection, rank: int) -> LocalizedTable:
        """One-dimensional localized access table for ``section`` along
        dimension ``dim`` on ``rank`` (identity-alignment fast path and
        affine alignments both supported)."""
        d = self._dims[dim]
        if d.layout is None:
            raise ValueError(f"dimension {dim} of {self.name} is not distributed")
        rc = self.grid.coordinates(rank)
        coord = rc[d.axis_map.grid_axis]
        return localize_section(
            d.layout.p, d.layout.k, d.extent, d.axis_map.alignment, section, coord
        )

    def local_section_elements(
        self, sections: tuple[RegularSection, ...], rank: int
    ) -> list[tuple[tuple[int, ...], int]]:
        """All ``(global_index_tuple, flat_local_address)`` pairs of the
        multidimensional section owned by ``rank``, in odometer order
        (first dimension slowest) -- multiple applications of the 1-D
        algorithm, as the paper prescribes."""
        if len(sections) != self.rank:
            raise ValueError(
                f"need one section per dimension: {self.rank} dims, "
                f"{len(sections)} sections"
            )
        rc = self.grid.coordinates(rank)
        per_dim: list[list[tuple[int, int]]] = []
        for sec, dim in zip(sections, self._dims):
            if dim.layout is None:
                norm = sec.normalized()
                if norm.is_empty:
                    return []
                if norm.lower < 0 or norm.upper >= dim.extent:
                    raise IndexError(f"section {sec} outside extent {dim.extent}")
                per_dim.append([(i, i) for i in norm])
            else:
                coord = rc[dim.axis_map.grid_axis]
                from .localize import localized_elements

                pairs = localized_elements(
                    dim.layout.p, dim.layout.k, dim.extent,
                    dim.axis_map.alignment, sec, coord,
                )
                if not pairs:
                    return []
                per_dim.append(pairs)
        shape = self.local_shape(rank)
        out: list[tuple[tuple[int, ...], int]] = []

        def recurse(d: int, idx: list[int], addr: int) -> None:
            if d == self.rank:
                out.append((tuple(idx), addr))
                return
            for g, slot in per_dim[d]:
                idx.append(g)
                recurse(d + 1, idx, addr * shape[d] + slot)
                idx.pop()

        recurse(0, [], 0)
        return out

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        dims = ", ".join(
            f"{am.alignment}->{am.distribution.describe()}" for am in self.axis_maps
        )
        return f"DistributedArray({self.name}{list(self.shape)}: {dims} onto {self.grid.name})"
