"""HPF data-mapping substrate: sections, layouts, distributions,
alignments, and distributed-array descriptors (paper Sections 1-2)."""

from .align import IDENTITY, Alignment
from .array import AxisMap, DistributedArray
from .dist import (
    Block,
    Collapsed,
    Cyclic,
    CyclicK,
    Distribution,
    ProcessorGrid,
    Replicated,
    Template,
)
from .layout import CyclicLayout, ElementCoords
from .localize import (
    LocalizedTable,
    RankFunction,
    localize_section,
    localized_arrays,
    localized_elements,
)
from .section import RegularSection

__all__ = [
    "Alignment",
    "IDENTITY",
    "AxisMap",
    "DistributedArray",
    "Block",
    "Cyclic",
    "CyclicK",
    "Collapsed",
    "Replicated",
    "Distribution",
    "ProcessorGrid",
    "Template",
    "CyclicLayout",
    "ElementCoords",
    "RegularSection",
    "LocalizedTable",
    "RankFunction",
    "localize_section",
    "localized_elements",
    "localized_arrays",
]
