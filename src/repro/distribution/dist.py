"""HPF distribution kinds, templates, and processor grids (paper Section 1).

HPF maps data in two steps: arrays are *aligned* to templates, and
templates are *distributed* onto processor grids.  The distribution
formats supported here are the ones HPF defines per dimension:

* ``BLOCK``        -- contiguous chunks, ``cyclic(ceil(n/p))``;
* ``CYCLIC``       -- round-robin single elements, ``cyclic(1)``;
* ``CYCLIC(k)``    -- the general block-cyclic format this paper targets;
* ``*`` (collapsed) -- the dimension is not distributed;
* ``REPLICATED``   -- every processor holds a full copy (alignment
  ``*`` onto a processor dimension).

Every distributed format reduces to ``cyclic(k)`` for some ``k``
(Section 1: "Both of these are just special cases of the cyclic(k)
distribution"), which is why the access-sequence algorithm covers all
of HPF.
"""

from __future__ import annotations

from dataclasses import dataclass
from math import prod

from ..core.euclid import ceil_div

__all__ = [
    "Distribution",
    "Block",
    "Cyclic",
    "CyclicK",
    "Collapsed",
    "Replicated",
    "Template",
    "ProcessorGrid",
]


class Distribution:
    """Base class for per-dimension distribution formats."""

    #: True when the format assigns template cells to processors (False
    #: for collapsed/replicated dimensions).
    partitions: bool = True

    def block_size(self, extent: int, nprocs: int) -> int:
        """The equivalent ``cyclic(k)`` block size for this format."""
        raise NotImplementedError

    def describe(self) -> str:
        raise NotImplementedError

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"{type(self).__name__}({self.describe()})"


@dataclass(frozen=True, slots=True)
class Block(Distribution):
    """HPF ``BLOCK``: one contiguous chunk of ``ceil(n/p)`` per processor."""

    def block_size(self, extent: int, nprocs: int) -> int:
        if extent <= 0 or nprocs <= 0:
            raise ValueError(f"need positive extent and nprocs, got {extent}, {nprocs}")
        return ceil_div(extent, nprocs)

    def describe(self) -> str:
        return "BLOCK"


@dataclass(frozen=True, slots=True)
class Cyclic(Distribution):
    """HPF ``CYCLIC``: round-robin, ``cyclic(1)``."""

    def block_size(self, extent: int, nprocs: int) -> int:
        return 1

    def describe(self) -> str:
        return "CYCLIC"


@dataclass(frozen=True, slots=True)
class CyclicK(Distribution):
    """HPF ``CYCLIC(k)``: blocks of ``k`` dealt round-robin."""

    k: int

    def __post_init__(self) -> None:
        if self.k <= 0:
            raise ValueError(f"cyclic block size must be positive, got {self.k}")

    def block_size(self, extent: int, nprocs: int) -> int:
        return self.k

    def describe(self) -> str:
        return f"CYCLIC({self.k})"


@dataclass(frozen=True, slots=True)
class Collapsed(Distribution):
    """HPF ``*``: the dimension stays whole on every owning processor."""

    partitions = False

    def block_size(self, extent: int, nprocs: int) -> int:
        return extent

    def describe(self) -> str:
        return "*"


@dataclass(frozen=True, slots=True)
class Replicated(Distribution):
    """Every processor holds the full extent (HPF replication alignment)."""

    partitions = False

    def block_size(self, extent: int, nprocs: int) -> int:
        return extent

    def describe(self) -> str:
        return "REPLICATED"


@dataclass(frozen=True, slots=True)
class Template:
    """An HPF template: an abstract indexed space arrays align to."""

    name: str
    shape: tuple[int, ...]

    def __post_init__(self) -> None:
        if not self.shape:
            raise ValueError("template must have at least one dimension")
        if any(extent <= 0 for extent in self.shape):
            raise ValueError(f"template extents must be positive, got {self.shape}")

    @property
    def rank(self) -> int:
        return len(self.shape)

    @property
    def size(self) -> int:
        return prod(self.shape)


@dataclass(frozen=True, slots=True)
class ProcessorGrid:
    """A (possibly multidimensional) grid of abstract processors.

    Ranks are linearized row-major (last axis fastest), matching the
    paper's flat processor numbering for the one-dimensional case.
    """

    name: str
    shape: tuple[int, ...]

    def __post_init__(self) -> None:
        if not self.shape:
            raise ValueError("processor grid must have at least one dimension")
        if any(extent <= 0 for extent in self.shape):
            raise ValueError(f"grid extents must be positive, got {self.shape}")

    @property
    def rank(self) -> int:
        return len(self.shape)

    @property
    def size(self) -> int:
        return prod(self.shape)

    def linearize(self, coords: tuple[int, ...]) -> int:
        """Row-major rank of grid coordinates."""
        if len(coords) != len(self.shape):
            raise ValueError(f"expected {len(self.shape)} coordinates, got {coords}")
        rank = 0
        for c, extent in zip(coords, self.shape):
            if not 0 <= c < extent:
                raise ValueError(f"coordinate {c} out of range [0, {extent})")
            rank = rank * extent + c
        return rank

    def coordinates(self, rank: int) -> tuple[int, ...]:
        """Inverse of :meth:`linearize`."""
        if not 0 <= rank < self.size:
            raise ValueError(f"rank {rank} out of range [0, {self.size})")
        coords = []
        for extent in reversed(self.shape):
            rank, c = divmod(rank, extent)
            coords.append(c)
        return tuple(reversed(coords))
