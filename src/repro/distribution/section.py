"""Regular array sections (Fortran 90 subscript triplets).

A regular section ``A(l:u:s)`` denotes the elements ``l, l+s, l+2s, ...``
up to and including ``u`` (for ``s > 0``; downward for ``s < 0``).  The
paper treats sections with ``s > 0`` and notes negative strides "can be
treated analogously" -- :meth:`RegularSection.normalized` performs that
reduction, reversing the traversal direction while preserving the
element set.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator

from ..core.euclid import crt_pair, gcd

__all__ = ["RegularSection"]


@dataclass(frozen=True, slots=True)
class RegularSection:
    """A Fortran-90 triplet ``l:u:s`` over global array indices."""

    lower: int
    upper: int
    stride: int = 1

    def __post_init__(self) -> None:
        if self.stride == 0:
            raise ValueError("section stride must be nonzero")

    # ------------------------------------------------------------------
    # Basic queries
    # ------------------------------------------------------------------

    def __len__(self) -> int:
        if self.stride > 0:
            return 0 if self.upper < self.lower else (self.upper - self.lower) // self.stride + 1
        return 0 if self.upper > self.lower else (self.lower - self.upper) // (-self.stride) + 1

    @property
    def is_empty(self) -> bool:
        return len(self) == 0

    @property
    def last(self) -> int | None:
        """The final element in traversal order, or ``None`` if empty."""
        n = len(self)
        return None if n == 0 else self.lower + (n - 1) * self.stride

    def __contains__(self, index: int) -> bool:
        n = len(self)
        if n == 0:
            return False
        offset = index - self.lower
        if offset % self.stride != 0:
            return False
        j = offset // self.stride
        return 0 <= j < n

    def __iter__(self) -> Iterator[int]:
        for j in range(len(self)):
            yield self.lower + j * self.stride

    def element(self, j: int) -> int:
        """The ``j``-th element in traversal order."""
        if not 0 <= j < len(self):
            raise IndexError(f"element {j} out of range for section of length {len(self)}")
        return self.lower + j * self.stride

    def position_of(self, index: int) -> int:
        """Traversal position of ``index``; raises if not a member."""
        if index not in self:
            raise ValueError(f"{index} is not an element of {self}")
        return (index - self.lower) // self.stride

    # ------------------------------------------------------------------
    # Transformations
    # ------------------------------------------------------------------

    def normalized(self) -> "RegularSection":
        """Equivalent section with positive stride (element set preserved,
        traversal order reversed when ``stride < 0``)."""
        if self.stride > 0:
            return self
        if self.is_empty:
            return RegularSection(self.lower, self.lower - 1, -self.stride)
        return RegularSection(self.last, self.lower, -self.stride)

    def reversed(self) -> "RegularSection":
        """Same element set, opposite traversal order."""
        if self.is_empty:
            return RegularSection(self.upper, self.lower, -self.stride)
        return RegularSection(self.last, self.lower, -self.stride)

    def affine_image(self, a: int, b: int) -> "RegularSection":
        """The image section ``{a*i + b : i in self}`` (``a != 0``).

        Used for alignment composition: a section of an array aligned by
        ``i -> a*i + b`` touches exactly this section of the template.
        """
        if a == 0:
            raise ValueError("affine coefficient a must be nonzero")
        return RegularSection(a * self.lower + b, a * self.upper + b, a * self.stride)

    def compose(self, inner: "RegularSection") -> "RegularSection":
        """Section-of-a-section: ``self.element(j)`` for ``j`` in ``inner``.

        ``inner`` indexes traversal positions of ``self`` and must lie in
        ``[0, len(self))``.
        """
        n = len(self)
        for j in (inner.lower, inner.last if not inner.is_empty else inner.lower):
            if not 0 <= j < n:
                raise IndexError(
                    f"inner section {inner} indexes outside [0, {n}) of {self}"
                )
        return RegularSection(
            self.lower + inner.lower * self.stride,
            self.lower + inner.upper * self.stride,
            self.stride * inner.stride,
        )

    def intersect(self, other: "RegularSection") -> "RegularSection":
        """Set intersection of two sections -- itself a regular section.

        Solved with the Chinese Remainder Theorem on the two stride
        congruences; the result has positive stride ``lcm(|s1|, |s2|)``.
        Returns an empty section when the congruences are incompatible or
        the ranges do not overlap.
        """
        a, b = self.normalized(), other.normalized()
        lo = max(a.lower, b.lower)
        hi = min(a.upper if not a.is_empty else a.lower - 1,
                 b.upper if not b.is_empty else b.lower - 1)
        if a.is_empty or b.is_empty or lo > hi:
            return RegularSection(lo, lo - 1, 1)
        merged = crt_pair(a.lower % a.stride, a.stride, b.lower % b.stride, b.stride)
        if merged is None:
            return RegularSection(lo, lo - 1, 1)
        step = merged.period
        first = lo + (merged.base - lo) % step
        # first is the smallest member of both congruence classes >= lo,
        # but it must also belong to both sections' index ranges (it does:
        # ranges were clamped) and actual membership classes.
        if first > hi:
            return RegularSection(lo, lo - 1, 1)
        last = first + (hi - first) // step * step
        return RegularSection(first, last, step)

    def gcd_stride_with(self, other: "RegularSection") -> int:
        return gcd(abs(self.stride), abs(other.stride))

    def __str__(self) -> str:
        return f"{self.lower}:{self.upper}:{self.stride}"
