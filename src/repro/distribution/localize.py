"""Access sequences under affine alignment: the two-application scheme.

Paper, Section 2: "Chatterjee et al. show that the memory access problem
for any affine alignment can be solved by two applications of the access
sequence computation algorithm for the identity alignment."  This module
implements that scheme:

1. **Application 1 (allocation):** the array's elements occupy template
   cells ``b, a+b, 2a+b, ...`` -- a regular section with stride ``a``.
   Its access table describes, per processor, which *template-local*
   addresses hold array elements.  Compressed array storage assigns the
   array element at the ``r``-th such address local slot ``r``; the rank
   function :class:`RankFunction` computes ``r`` from a template-local
   address in O(1) using the allocation table's periodic structure.

2. **Application 2 (section):** the array section ``A(l:u:s)`` touches
   template cells ``a*l+b : a*u+b : a*s`` -- another regular section.
   Its access table enumerates the touched template-local addresses in
   order; mapping each through the rank function yields array-local
   slots, and differencing those gives the array-local gap table.

The combined gap table is periodic with the *section* table's cycle
length, because one section period spans an integral number of
allocation periods (``d_alloc * s / d_sect`` of them).
"""

from __future__ import annotations

from bisect import bisect_right
from dataclasses import dataclass

import numpy as np

from ..core.access import AccessTable, compute_access_table
from ..core.counting import local_count
from ..core.euclid import extended_gcd
from ..core.kernels import expand_table, periodic_floor_rank_of, periodic_rank_of
from .align import Alignment
from .section import RegularSection

__all__ = [
    "RankFunction",
    "LocalizedTable",
    "localize_section",
    "localized_elements",
    "localized_arrays",
]


class RankFunction:
    """Rank of a template-local address within an allocation sequence.

    Built from the allocation sequence's access table on one processor:
    the first-cycle addresses ``c_0 < c_1 < ... < c_{L-1}`` and the
    period span ``P`` satisfy ``c_{t + q*L} = c_t + q*P``, so

        rank(addr) = q * L + position_in_cycle(addr - q * P)

    Lookups are O(1) via a residue dictionary.
    """

    def __init__(self, table: AccessTable) -> None:
        if table.is_empty:
            raise ValueError("allocation sequence is empty on this processor")
        self.table = table
        d, _, _ = extended_gcd(table.s, table.pk)
        self.period_span = table.k * table.s // d
        addrs = table.local_addresses(table.length)
        self.first = addrs[0]
        self._position = {addr - self.first: t for t, addr in enumerate(addrs)}
        self.cycle = addrs
        # First-cycle relative offsets, ascending (the access sequence
        # visits local addresses in increasing order): shared by
        # floor_rank's bisect and the vectorized lookups.
        self._rel = [a - self.first for a in addrs]
        self._rel_arr = np.asarray(self._rel, dtype=np.int64)

    def rank(self, addr: int) -> int:
        """Array-local slot of the element stored at template-local
        ``addr``; raises KeyError if no allocation point lives there."""
        delta = addr - self.first
        q, r = divmod(delta, self.period_span)
        if r not in self._position:
            raise KeyError(f"template-local address {addr} holds no array element")
        return q * self.table.length + self._position[r]

    def unrank(self, slot: int) -> int:
        """Template-local address of array-local ``slot`` (inverse of
        :meth:`rank`)."""
        if slot < 0:
            raise ValueError(f"slot must be nonnegative, got {slot}")
        q, t = divmod(slot, self.table.length)
        return self.cycle[t] + q * self.period_span

    def floor_rank(self, addr: int) -> int:
        """Number of allocation points with address ``<= addr`` minus one
        (i.e. rank of the last allocation point at or before ``addr``);
        ``-1`` when ``addr`` precedes the first point."""
        delta = addr - self.first
        if delta < 0:
            return -1
        q, r = divmod(delta, self.period_span)
        pos = bisect_right(self._rel, r) - 1
        return q * self.table.length + pos

    def rank_array(self, addrs) -> np.ndarray:
        """Vectorized :meth:`rank`: compressed slots of a whole address
        vector in one divmod + ``searchsorted`` pass (KeyError when any
        address holds no allocation point)."""
        return periodic_rank_of(
            addrs, self.first, self.period_span, self._rel_arr
        )

    def floor_rank_array(self, addrs) -> np.ndarray:
        """Vectorized :meth:`floor_rank`."""
        return periodic_floor_rank_of(
            addrs, self.first, self.period_span, self._rel_arr
        )


@dataclass(frozen=True, slots=True)
class LocalizedTable:
    """Array-local access sequence for a section under affine alignment.

    ``start_index`` is the global *array* index of the first owned
    section element (in template traversal order), ``start_slot`` its
    array-local storage slot, ``gaps`` the periodic slot gaps and
    ``index_gaps`` the matching array-index gaps.  For alignments with
    ``a > 0`` template order equals array-index order; for ``a < 0`` it
    is the reverse (use :meth:`reversed_in_index_order`).
    """

    p: int
    k: int
    m: int
    alignment: Alignment
    start_index: int | None
    start_slot: int | None
    length: int
    gaps: tuple[int, ...]
    index_gaps: tuple[int, ...]

    @property
    def is_empty(self) -> bool:
        return self.length == 0

    def slots(self, count: int) -> list[int]:
        """First ``count`` array-local slots of the sequence."""
        if count < 0:
            raise ValueError(f"count must be nonnegative, got {count}")
        if self.is_empty:
            if count:
                raise ValueError("processor owns no section elements")
            return []
        out = []
        slot = self.start_slot
        for t in range(count):
            out.append(slot)
            slot += self.gaps[t % self.length]
        return out

    def indices(self, count: int) -> list[int]:
        """First ``count`` global array indices of the sequence."""
        if count < 0:
            raise ValueError(f"count must be nonnegative, got {count}")
        if self.is_empty:
            if count:
                raise ValueError("processor owns no section elements")
            return []
        out = []
        idx = self.start_index
        for t in range(count):
            out.append(idx)
            idx += self.index_gaps[t % self.length]
        return out

    def slots_array(self, count: int) -> np.ndarray:
        """First ``count`` array-local slots as one int64 vector (the
        vectorized form of :meth:`slots`)."""
        if count < 0:
            raise ValueError(f"count must be nonnegative, got {count}")
        if self.is_empty:
            if count:
                raise ValueError("processor owns no section elements")
            return np.empty(0, dtype=np.int64)
        return expand_table(self.start_slot, self.gaps, count)

    def indices_array(self, count: int) -> np.ndarray:
        """First ``count`` global array indices as one int64 vector (the
        vectorized form of :meth:`indices`)."""
        if count < 0:
            raise ValueError(f"count must be nonnegative, got {count}")
        if self.is_empty:
            if count:
                raise ValueError("processor owns no section elements")
            return np.empty(0, dtype=np.int64)
        return expand_table(self.start_index, self.index_gaps, count)


def localize_section(
    p: int,
    k: int,
    extent: int,
    alignment: Alignment,
    section: RegularSection,
    m: int,
) -> LocalizedTable:
    """Two-application access sequence for ``A(section)`` on processor ``m``.

    ``extent`` is the array's size ``n`` (elements ``0..n-1``); the
    section must lie within ``[0, extent)``.  The sequence follows
    *template* order, i.e. increasing array index when ``alignment.a > 0``
    and decreasing when ``a < 0``.
    """
    norm = section.normalized()
    if norm.is_empty:
        return LocalizedTable(p, k, m, alignment, None, None, 0, (), ())
    if norm.lower < 0 or norm.upper >= extent:
        raise IndexError(f"section {section} outside array extent {extent}")

    # Application 1: allocation sequence (template stride |a|).
    alloc = alignment.allocation_section(extent).normalized()
    alloc_table = compute_access_table(p, k, alloc.lower, alloc.stride, m)
    if alloc_table.is_empty:
        # Processor holds no array elements at all, hence none of the section.
        return LocalizedTable(p, k, m, alignment, None, None, 0, (), ())
    ranks = RankFunction(alloc_table)

    # Application 2: the section's image on the template axis, in
    # template (increasing-cell) order.
    image = alignment.apply_section(norm).normalized()
    sec_table = compute_access_table(p, k, image.lower, image.stride, m)
    if sec_table.is_empty:
        return LocalizedTable(p, k, m, alignment, None, None, 0, (), ())

    # Map one cycle (plus the wrap point) of template-local addresses to
    # array-local slots and difference them.
    template_addrs = sec_table.local_addresses(sec_table.length + 1)
    slots = [ranks.rank(addr) for addr in template_addrs]
    gaps = tuple(slots[t + 1] - slots[t] for t in range(sec_table.length))

    cells = sec_table.global_indices(sec_table.length + 1)
    indices = [alignment.invert(c) for c in cells]
    if any(i is None for i in indices):
        raise AssertionError("section image cell holds no array element")
    index_gaps = tuple(indices[t + 1] - indices[t] for t in range(sec_table.length))

    return LocalizedTable(
        p, k, m, alignment,
        indices[0], slots[0], sec_table.length, gaps, index_gaps,
    )


def _bounded_count(
    p: int, k: int, alignment: Alignment, section: RegularSection, m: int
) -> int:
    """Owned-element count of the bounded section on processor ``m``."""
    norm = section.normalized()
    image = alignment.apply_section(norm).normalized()
    return local_count(p, k, image.lower, image.upper, image.stride, m)


def localized_elements(
    p: int,
    k: int,
    extent: int,
    alignment: Alignment,
    section: RegularSection,
    m: int,
) -> list[tuple[int, int]]:
    """All ``(array_index, array_local_slot)`` pairs of the section owned
    by processor ``m``, in template order.  Bounded by the section's
    upper end.

    This is the *scalar reference path* (pure-Python expansion); the
    runtime consumes :func:`localized_arrays`, which produces the same
    sequence as NumPy vectors in O(count) vector ops.  The property
    tests assert the two stay bit-identical.
    """
    table = localize_section(p, k, extent, alignment, section, m)
    if table.is_empty:
        return []
    count = _bounded_count(p, k, alignment, section, m)
    return list(zip(table.indices(count), table.slots(count)))


def localized_arrays(
    p: int,
    k: int,
    extent: int,
    alignment: Alignment,
    section: RegularSection,
    m: int,
) -> tuple[np.ndarray, np.ndarray]:
    """Vectorized :func:`localized_elements`: the section's owned
    ``(array_indices, array_local_slots)`` on processor ``m`` as two
    parallel int64 vectors in template order.

    The periodic table is built once with the O(k) algorithm and
    expanded with :func:`repro.core.kernels.expand_table`; no
    per-element Python executes.  The returned arrays are marked
    read-only so cached copies can be shared safely
    (see :mod:`repro.runtime.plancache`).
    """
    table = localize_section(p, k, extent, alignment, section, m)
    if table.is_empty:
        indices = slots = np.empty(0, dtype=np.int64)
    else:
        count = _bounded_count(p, k, alignment, section, m)
        indices = table.indices_array(count)
        slots = table.slots_array(count)
    indices.flags.writeable = False
    slots.flags.writeable = False
    return indices, slots
