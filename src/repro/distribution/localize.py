"""Access sequences under affine alignment: the two-application scheme.

Paper, Section 2: "Chatterjee et al. show that the memory access problem
for any affine alignment can be solved by two applications of the access
sequence computation algorithm for the identity alignment."  This module
implements that scheme:

1. **Application 1 (allocation):** the array's elements occupy template
   cells ``b, a+b, 2a+b, ...`` -- a regular section with stride ``a``.
   Its access table describes, per processor, which *template-local*
   addresses hold array elements.  Compressed array storage assigns the
   array element at the ``r``-th such address local slot ``r``; the rank
   function :class:`RankFunction` computes ``r`` from a template-local
   address in O(1) using the allocation table's periodic structure.

2. **Application 2 (section):** the array section ``A(l:u:s)`` touches
   template cells ``a*l+b : a*u+b : a*s`` -- another regular section.
   Its access table enumerates the touched template-local addresses in
   order; mapping each through the rank function yields array-local
   slots, and differencing those gives the array-local gap table.

The combined gap table is periodic with the *section* table's cycle
length, because one section period spans an integral number of
allocation periods (``d_alloc * s / d_sect`` of them).
"""

from __future__ import annotations

from bisect import bisect_right
from dataclasses import dataclass

from ..core.access import AccessTable, compute_access_table
from ..core.counting import local_count
from ..core.euclid import extended_gcd
from .align import Alignment
from .section import RegularSection

__all__ = ["RankFunction", "LocalizedTable", "localize_section", "localized_elements"]


class RankFunction:
    """Rank of a template-local address within an allocation sequence.

    Built from the allocation sequence's access table on one processor:
    the first-cycle addresses ``c_0 < c_1 < ... < c_{L-1}`` and the
    period span ``P`` satisfy ``c_{t + q*L} = c_t + q*P``, so

        rank(addr) = q * L + position_in_cycle(addr - q * P)

    Lookups are O(1) via a residue dictionary.
    """

    def __init__(self, table: AccessTable) -> None:
        if table.is_empty:
            raise ValueError("allocation sequence is empty on this processor")
        self.table = table
        d, _, _ = extended_gcd(table.s, table.pk)
        self.period_span = table.k * table.s // d
        addrs = table.local_addresses(table.length)
        self.first = addrs[0]
        self._position = {addr - self.first: t for t, addr in enumerate(addrs)}
        self.cycle = addrs

    def rank(self, addr: int) -> int:
        """Array-local slot of the element stored at template-local
        ``addr``; raises KeyError if no allocation point lives there."""
        delta = addr - self.first
        q, r = divmod(delta, self.period_span)
        if r not in self._position:
            raise KeyError(f"template-local address {addr} holds no array element")
        return q * self.table.length + self._position[r]

    def unrank(self, slot: int) -> int:
        """Template-local address of array-local ``slot`` (inverse of
        :meth:`rank`)."""
        if slot < 0:
            raise ValueError(f"slot must be nonnegative, got {slot}")
        q, t = divmod(slot, self.table.length)
        return self.cycle[t] + q * self.period_span

    def floor_rank(self, addr: int) -> int:
        """Number of allocation points with address ``<= addr`` minus one
        (i.e. rank of the last allocation point at or before ``addr``);
        ``-1`` when ``addr`` precedes the first point."""
        delta = addr - self.first
        if delta < 0:
            return -1
        q, r = divmod(delta, self.period_span)
        rel = [a - self.first for a in self.cycle]
        pos = bisect_right(rel, r) - 1
        return q * self.table.length + pos


@dataclass(frozen=True, slots=True)
class LocalizedTable:
    """Array-local access sequence for a section under affine alignment.

    ``start_index`` is the global *array* index of the first owned
    section element (in template traversal order), ``start_slot`` its
    array-local storage slot, ``gaps`` the periodic slot gaps and
    ``index_gaps`` the matching array-index gaps.  For alignments with
    ``a > 0`` template order equals array-index order; for ``a < 0`` it
    is the reverse (use :meth:`reversed_in_index_order`).
    """

    p: int
    k: int
    m: int
    alignment: Alignment
    start_index: int | None
    start_slot: int | None
    length: int
    gaps: tuple[int, ...]
    index_gaps: tuple[int, ...]

    @property
    def is_empty(self) -> bool:
        return self.length == 0

    def slots(self, count: int) -> list[int]:
        """First ``count`` array-local slots of the sequence."""
        if count < 0:
            raise ValueError(f"count must be nonnegative, got {count}")
        if self.is_empty:
            if count:
                raise ValueError("processor owns no section elements")
            return []
        out = []
        slot = self.start_slot
        for t in range(count):
            out.append(slot)
            slot += self.gaps[t % self.length]
        return out

    def indices(self, count: int) -> list[int]:
        """First ``count`` global array indices of the sequence."""
        if count < 0:
            raise ValueError(f"count must be nonnegative, got {count}")
        if self.is_empty:
            if count:
                raise ValueError("processor owns no section elements")
            return []
        out = []
        idx = self.start_index
        for t in range(count):
            out.append(idx)
            idx += self.index_gaps[t % self.length]
        return out


def localize_section(
    p: int,
    k: int,
    extent: int,
    alignment: Alignment,
    section: RegularSection,
    m: int,
) -> LocalizedTable:
    """Two-application access sequence for ``A(section)`` on processor ``m``.

    ``extent`` is the array's size ``n`` (elements ``0..n-1``); the
    section must lie within ``[0, extent)``.  The sequence follows
    *template* order, i.e. increasing array index when ``alignment.a > 0``
    and decreasing when ``a < 0``.
    """
    norm = section.normalized()
    if norm.is_empty:
        return LocalizedTable(p, k, m, alignment, None, None, 0, (), ())
    if norm.lower < 0 or norm.upper >= extent:
        raise IndexError(f"section {section} outside array extent {extent}")

    # Application 1: allocation sequence (template stride |a|).
    alloc = alignment.allocation_section(extent).normalized()
    alloc_table = compute_access_table(p, k, alloc.lower, alloc.stride, m)
    if alloc_table.is_empty:
        # Processor holds no array elements at all, hence none of the section.
        return LocalizedTable(p, k, m, alignment, None, None, 0, (), ())
    ranks = RankFunction(alloc_table)

    # Application 2: the section's image on the template axis, in
    # template (increasing-cell) order.
    image = alignment.apply_section(norm).normalized()
    sec_table = compute_access_table(p, k, image.lower, image.stride, m)
    if sec_table.is_empty:
        return LocalizedTable(p, k, m, alignment, None, None, 0, (), ())

    # Map one cycle (plus the wrap point) of template-local addresses to
    # array-local slots and difference them.
    template_addrs = sec_table.local_addresses(sec_table.length + 1)
    slots = [ranks.rank(addr) for addr in template_addrs]
    gaps = tuple(slots[t + 1] - slots[t] for t in range(sec_table.length))

    cells = sec_table.global_indices(sec_table.length + 1)
    indices = [alignment.invert(c) for c in cells]
    if any(i is None for i in indices):
        raise AssertionError("section image cell holds no array element")
    index_gaps = tuple(indices[t + 1] - indices[t] for t in range(sec_table.length))

    return LocalizedTable(
        p, k, m, alignment,
        indices[0], slots[0], sec_table.length, gaps, index_gaps,
    )


def localized_elements(
    p: int,
    k: int,
    extent: int,
    alignment: Alignment,
    section: RegularSection,
    m: int,
) -> list[tuple[int, int]]:
    """All ``(array_index, array_local_slot)`` pairs of the section owned
    by processor ``m``, in template order.  Bounded by the section's
    upper end; used by the runtime and as a convenient oracle target."""
    table = localize_section(p, k, extent, alignment, section, m)
    if table.is_empty:
        return []
    norm = section.normalized()
    image = alignment.apply_section(norm).normalized()
    count = local_count(p, k, image.lower, image.upper, image.stride, m)
    return list(zip(table.indices(count), table.slots(count)))
