"""Affine alignments of array axes to template axes (paper Section 2).

HPF allows array element ``A(i)`` to be aligned to template cell
``a*i + b`` for arbitrary integers ``a != 0`` and ``b`` (identity
alignment is ``a=1, b=0``).  Chatterjee et al. showed -- and the paper
relies on -- the fact that the access problem under any affine
alignment reduces to two applications of the identity-alignment
algorithm; :mod:`repro.distribution.localize` implements that scheme on
top of this module's pure alignment algebra.
"""

from __future__ import annotations

from dataclasses import dataclass

from .section import RegularSection

__all__ = ["Alignment", "IDENTITY"]


@dataclass(frozen=True, slots=True)
class Alignment:
    """The affine map ``i -> a*i + b`` from array axis to template axis."""

    a: int = 1
    b: int = 0

    def __post_init__(self) -> None:
        if self.a == 0:
            raise ValueError("alignment coefficient a must be nonzero")

    @property
    def is_identity(self) -> bool:
        return self.a == 1 and self.b == 0

    def apply(self, index: int) -> int:
        """Template cell holding array element ``index``."""
        return self.a * index + self.b

    def invert(self, cell: int) -> int | None:
        """Array index aligned to template ``cell``, or ``None`` when the
        cell holds no array element."""
        offset = cell - self.b
        if offset % self.a != 0:
            return None
        return offset // self.a

    def apply_section(self, section: RegularSection) -> RegularSection:
        """Image of an array section on the template axis."""
        return section.affine_image(self.a, self.b)

    def allocation_section(self, extent: int) -> RegularSection:
        """Template cells occupied by an array of ``extent`` elements:
        the section ``b : a*(extent-1)+b : a``."""
        if extent <= 0:
            raise ValueError(f"array extent must be positive, got {extent}")
        return RegularSection(self.b, self.a * (extent - 1) + self.b, self.a)

    def compose(self, inner: "Alignment") -> "Alignment":
        """``self ∘ inner``: align through an intermediate axis.

        If ``B(j) = A(inner(j))`` and ``A`` is aligned by ``self``, then
        ``B`` is aligned by the composition ``j -> self(inner(j))``.
        """
        return Alignment(self.a * inner.a, self.a * inner.b + self.b)

    def __str__(self) -> str:
        if self.is_identity:
            return "i"
        sign = "+" if self.b >= 0 else "-"
        return f"{self.a}*i {sign} {abs(self.b)}"


#: The identity alignment ``i -> i``.
IDENTITY = Alignment(1, 0)
