"""Coordinate algebra of the ``cyclic(k)`` layout (paper Sections 1-3).

An array distributed ``cyclic(k)`` over ``p`` processors is visualized
as a matrix whose rows hold ``p*k`` consecutive elements, each row split
into ``p`` blocks of ``k``; block ``m`` of every row lives on processor
``m``.  For element index ``i`` (zero-based, as in the paper):

* row            ``i div pk``
* offset in row  ``i mod pk``
* owner          ``(i mod pk) div k``
* block offset   ``(i mod pk) mod k``  (offset *within* the block)
* block number   ``i div pk``          (per-processor block = row)
* local address  ``row * k + block offset``

Figure 1's example: with ``p=4, k=8``, element 108 has offset 4 in
block 3 of processor 1 -- see :func:`tests.test_paper_examples`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator

__all__ = ["CyclicLayout", "ElementCoords"]


@dataclass(frozen=True, slots=True)
class ElementCoords:
    """Full coordinates of one element under a :class:`CyclicLayout`."""

    index: int
    row: int
    offset_in_row: int
    owner: int
    block_offset: int
    local_address: int


@dataclass(frozen=True, slots=True)
class CyclicLayout:
    """The ``cyclic(k)`` layout of a one-dimensional template.

    ``p`` is the number of processors and ``k`` the block size.  All
    index math is exact integer arithmetic; indices may be any integers
    (negative rows arise in lattice constructions).
    """

    p: int
    k: int

    def __post_init__(self) -> None:
        if self.p <= 0:
            raise ValueError(f"number of processors must be positive, got {self.p}")
        if self.k <= 0:
            raise ValueError(f"block size must be positive, got {self.k}")

    @property
    def row_length(self) -> int:
        """Elements per row: ``p * k``."""
        return self.p * self.k

    # ------------------------------------------------------------------
    # Global index -> coordinates
    # ------------------------------------------------------------------

    def row(self, index: int) -> int:
        return index // self.row_length

    def offset_in_row(self, index: int) -> int:
        return index % self.row_length

    def owner(self, index: int) -> int:
        return index % self.row_length // self.k

    def block_offset(self, index: int) -> int:
        return index % self.row_length % self.k

    def local_address(self, index: int) -> int:
        """Local memory address of ``index`` on its owning processor."""
        row, b = divmod(index, self.row_length)
        return row * self.k + b % self.k

    def local_address_on(self, index: int, m: int) -> int:
        """Local address of ``index`` assuming processor ``m`` owns it.

        Unlike :meth:`local_address` this keeps the algebraic form
        ``row*k + (offset_in_row - k*m)`` used by the access-sequence
        algorithms; it raises when ``m`` is not the owner.
        """
        if self.owner(index) != m:
            raise ValueError(
                f"element {index} is owned by processor {self.owner(index)}, not {m}"
            )
        row, b = divmod(index, self.row_length)
        return row * self.k + (b - self.k * m)

    def coords(self, index: int) -> ElementCoords:
        row, b = divmod(index, self.row_length)
        owner, block_offset = divmod(b, self.k)
        return ElementCoords(index, row, b, owner, block_offset, row * self.k + block_offset)

    def plane_point(self, index: int) -> tuple[int, int]:
        """The paper's Section-3 plane coordinates ``(x, y) = (offset, row)``.

        E.g. element 108 with ``p=4, k=8`` sits at ``(12, 3)``.
        """
        return (self.offset_in_row(index), self.row(index))

    # ------------------------------------------------------------------
    # Coordinates -> global index
    # ------------------------------------------------------------------

    def local_to_global(self, m: int, local: int) -> int:
        """Global index stored at local address ``local`` on processor ``m``."""
        if not 0 <= m < self.p:
            raise ValueError(f"processor {m} out of range [0, {self.p})")
        row, block_offset = divmod(local, self.k)
        return row * self.row_length + self.k * m + block_offset

    def from_plane(self, b: int, a: int) -> int:
        """Global index of plane point ``(b, a)``; ``b`` must be in
        ``[0, p*k)``."""
        if not 0 <= b < self.row_length:
            raise ValueError(f"offset {b} out of range [0, {self.row_length})")
        return a * self.row_length + b

    # ------------------------------------------------------------------
    # Per-processor extents
    # ------------------------------------------------------------------

    def block_range(self, m: int) -> tuple[int, int]:
        """Half-open row-offset range ``[k*m, k*(m+1))`` of processor ``m``."""
        if not 0 <= m < self.p:
            raise ValueError(f"processor {m} out of range [0, {self.p})")
        return (self.k * m, self.k * (m + 1))

    def allocation_size(self, n: int, m: int) -> int:
        """Local cells processor ``m`` needs for a template of ``n`` cells."""
        if n < 0:
            raise ValueError(f"template size must be nonnegative, got {n}")
        full_rows, rem = divmod(n, self.row_length)
        tail = min(max(rem - self.k * m, 0), self.k)
        return full_rows * self.k + tail

    def owned_indices(self, n: int, m: int) -> Iterator[int]:
        """All template indices in ``[0, n)`` owned by ``m``, ascending."""
        lo, _ = self.block_range(m)
        row_start = lo
        while row_start < n:
            yield from range(row_start, min(row_start + self.k, n))
            row_start += self.row_length
