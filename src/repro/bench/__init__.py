"""Benchmark harness library.

Each experiment module is runnable: ``python -m repro.bench.table1``,
``python -m repro.bench.figure7``, ``python -m repro.bench.table2``,
``python -m repro.bench.ablations``.  The pytest-benchmark suites under
``benchmarks/`` wrap the same workloads for statistical reporting.
"""

from .environment import environment_metadata
from .report import ascii_plot, format_markdown, format_table
from .timers import Timing, max_over_ranks, time_us
from .workloads import (
    PAPER_P,
    TABLE1_BLOCK_SIZES,
    TABLE2_ACCESSES_PER_PROC,
    TABLE2_BLOCK_SIZES,
    TABLE2_STRIDES,
    Table1Case,
    Table2Case,
    table1_cases,
    table1_strides,
    table2_cases,
)

__all__ = [
    "environment_metadata",
    "Timing",
    "time_us",
    "max_over_ranks",
    "format_table",
    "format_markdown",
    "ascii_plot",
    "PAPER_P",
    "TABLE1_BLOCK_SIZES",
    "TABLE2_BLOCK_SIZES",
    "TABLE2_STRIDES",
    "TABLE2_ACCESSES_PER_PROC",
    "Table1Case",
    "Table2Case",
    "table1_cases",
    "table1_strides",
    "table2_cases",
]
