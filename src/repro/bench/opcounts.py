"""Platform-independent operation counts for the two table constructions.

Wall-clock comparisons in Python are skewed: the sorting baseline's sort
runs in C (timsort) while the lattice walk is interpreted, which shifts
the small-``k`` crossover relative to the paper's C implementations (see
EXPERIMENTS.md).  This module counts *abstract operations* instead --
the quantities the paper's complexity analysis is about:

* **lattice**: lattice points examined during the basis walk (the paper
  proves at most ``2k + 1``) plus the two O(k) scan loops;
* **sorting**: comparisons performed by the sort (merge-sort count, the
  comparison-model cost ``Theta(k log k)``) plus the same scan loops.

The counting walkers mirror the production code paths; the test suite
asserts they produce the same tables, so the counts describe the real
algorithms.  Run with ``python -m repro.bench.opcounts``.
"""

from __future__ import annotations

import argparse

from ..core.access import compute_access_table, start_location
from ..core.euclid import extended_gcd
from ..core.lattice import compute_rl_basis
from .report import format_table
from .workloads import PAPER_P, TABLE1_BLOCK_SIZES

__all__ = ["lattice_op_counts", "sorting_op_counts", "main"]


def lattice_op_counts(p: int, k: int, l: int, s: int, m: int) -> dict[str, int]:
    """Operation counts of the Figure 5 algorithm.

    ``points_examined`` counts iterations of the doubly nested walk loop
    (Section 5.1 proves <= 2k + 1); ``scan_iterations`` counts the two
    O(k) scans (start location and min/max of the initial cycle).
    """
    pk = p * k
    d, x, _ = extended_gcd(s, pk)
    period = pk // d

    info = start_location(p, k, l, s, m)
    start, length = info.start, info.length
    lo_i = k * m - l
    scan_iterations = len(range(lo_i + (-lo_i) % d, lo_i + k, d))
    scan_iterations += len(range(d, k, d))  # min/max scan for the basis

    points = 0
    if length > 1:
        basis = compute_rl_basis(p, k, s)
        (br, _), (bl, _) = basis.r.vector, basis.l.vector
        offset = start % pk
        hi, lo = k * (m + 1), k * m
        i = 0
        while i < length:
            while i < length and offset + br < hi:
                offset += br
                i += 1
                points += 1
            if i == length:
                break
            offset -= bl
            points += 1
            if offset < lo:
                offset += br
                points += 1
            i += 1
    return {
        "length": length,
        "points_examined": points,
        "scan_iterations": scan_iterations,
        "total": points + scan_iterations,
    }


class _CountingKey:
    """Wrapper that counts comparisons made on it."""

    __slots__ = ("value", "counter")

    def __init__(self, value: int, counter: list[int]) -> None:
        self.value = value
        self.counter = counter

    def __lt__(self, other: "_CountingKey") -> bool:
        self.counter[0] += 1
        return self.value < other.value


def sorting_op_counts(p: int, k: int, l: int, s: int, m: int) -> dict[str, int]:
    """Operation counts of the Chatterjee et al. baseline: comparisons
    made by the sort plus the same O(k) scan loops."""
    pk = p * k
    d, x, _ = extended_gcd(s, pk)
    period = pk // d
    lo_i = k * m - l
    first = lo_i + (-lo_i) % d
    indices = [l + ((i // d) * x % period) * s for i in range(first, lo_i + k, d)]
    scan_iterations = len(indices)

    counter = [0]
    keyed = [_CountingKey(v, counter) for v in indices]
    keyed.sort()
    gap_scan = max(len(indices) - 1, 0)
    return {
        "length": len(indices),
        "comparisons": counter[0],
        "scan_iterations": scan_iterations + gap_scan,
        "total": counter[0] + scan_iterations + gap_scan,
    }


def run_opcounts(
    *, p: int = PAPER_P, s: int = 99, block_sizes=TABLE1_BLOCK_SIZES
) -> list[tuple[int, int, int, float]]:
    """Per-k ``(k, lattice_total, sorting_total, ratio)``, max over ranks."""
    out = []
    for k in block_sizes:
        lat = max(
            lattice_op_counts(p, k, 0, s, m)["total"] for m in range(p)
        )
        srt = max(
            sorting_op_counts(p, k, 0, s, m)["total"] for m in range(p)
        )
        out.append((k, lat, srt, srt / lat if lat else float("inf")))
    return out


def main(argv: list[str] | None = None) -> None:
    """CLI entry point; see the module docstring for what it prints."""
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--stride", type=int, default=99)
    args = parser.parse_args(argv)
    rows = run_opcounts(s=args.stride)
    print(f"Abstract operation counts, max over ranks (p={PAPER_P}, s={args.stride})")
    print(format_table(
        ["k", "Lattice ops (O(k))", "Sorting ops (O(k log k))", "ratio"], rows
    ))


if __name__ == "__main__":
    main()
