"""Figure 7: the s=7 column of Table 1 plotted against block size.

Regenerates the paper's Figure 7 -- construction time vs ``k`` for the
lattice algorithm and the sorting baseline at ``s = 7`` -- as an ASCII
plot plus the underlying data rows.  Run with::

    python -m repro.bench.figure7 [--quick]
"""

from __future__ import annotations

import argparse

from .report import ascii_plot, format_table
from .table1 import _measure
from .workloads import PAPER_P, TABLE1_BLOCK_SIZES

__all__ = ["run_figure7", "main"]


def run_figure7(
    *,
    p: int = PAPER_P,
    s: int = 7,
    block_sizes=TABLE1_BLOCK_SIZES,
    full: bool = False,
    repeats: int = 3,
) -> list[tuple[int, float, float]]:
    """Per-k ``(k, lattice_us, sorting_us)`` series at stride ``s``."""
    out = []
    for k in block_sizes:
        lat, srt = _measure(p, k, 0, s, full=full, repeats=repeats)
        out.append((k, lat, srt))
    return out


def main(argv: list[str] | None = None) -> None:
    """CLI entry point; see the module docstring for what it prints."""
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--quick", action="store_true")
    parser.add_argument("--repeats", type=int, default=3)
    args = parser.parse_args(argv)
    data = run_figure7(full=not args.quick, repeats=args.repeats)
    print("Figure 7: construction time vs block size (s=7, p=32)")
    print(format_table(
        ["k", "Lattice (us)", "Sorting (us)", "speedup"],
        [(k, lat, srt, srt / lat) for k, lat, srt in data],
    ))
    print()
    print(ascii_plot(
        {
            "Lattice": [(k, lat) for k, lat, _ in data],
            "Sorting": [(k, srt) for k, _, srt in data],
        },
        logy=True,
        title="time (us, log scale) vs k   [paper: Sorting diverges above Lattice]",
    ))


if __name__ == "__main__":
    main()
