"""Ablation studies called out in DESIGN.md (A1-A3).

* **A1** -- sorting baseline with timsort vs LSD radix sort (the paper's
  footnote: radix was used for k >= 64, flattening the speedup curve);
* **A2** -- table-free R/L generator vs materialized ΔM table for
  traversal (the Section 6.2 time/space trade-off);
* **A3** -- Hiranandani et al.'s special-case algorithm vs the lattice
  algorithm on inputs where both apply (``s mod pk < k``).

Run with ``python -m repro.bench.ablations``.
"""

from __future__ import annotations

import argparse

import numpy as np

from ..core.access import compute_access_table
from ..core.baselines.sorting import sorting_access_table
from ..core.baselines.special import special_access_table
from ..core.counting import local_allocation_size, local_count
from ..core.generator import RLCursor
from ..runtime.address import make_plan
from ..runtime.codegen import fill_shape_b
from .report import format_table
from .timers import time_us
from .workloads import PAPER_P, TABLE1_BLOCK_SIZES

__all__ = ["run_sort_ablation", "run_generator_ablation", "run_special_ablation", "main"]


def run_sort_ablation(
    *, p: int = PAPER_P, s: int = 99, block_sizes=TABLE1_BLOCK_SIZES, repeats: int = 3
) -> list[tuple[int, float, float, float]]:
    """A1: ``(k, lattice, sorting/timsort, sorting/radix)`` in us."""
    m = p // 2
    out = []
    for k in block_sizes:
        lat = time_us(lambda: compute_access_table(p, k, 0, s, m), repeats=repeats)
        tim = time_us(
            lambda: sorting_access_table(p, k, 0, s, m, sort="timsort"),
            repeats=repeats,
        )
        rad = time_us(
            lambda: sorting_access_table(p, k, 0, s, m, sort="radix"),
            repeats=repeats,
        )
        out.append((k, lat.best_us, tim.best_us, rad.best_us))
    return out


def run_generator_ablation(
    *, p: int = PAPER_P, k: int = 64, s: int = 9,
    accesses: int = 10_000, repeats: int = 3,
) -> dict[str, float]:
    """A2: traverse ``accesses`` elements via the materialized table
    (shape b) vs the O(1)-memory RLCursor."""
    m = p // 2
    u = (accesses * p - 1) * s
    plan = make_plan(p, k, 0, u, s, m)
    memory = np.zeros(local_allocation_size(p, k, u + 1, m))
    count = local_count(p, k, 0, u, s, m)

    def run_cursor():
        cur = RLCursor(p, k, 0, s, m)
        for _ in range(count):
            memory[cur.local] = 100.0
            cur.advance()

    table_t = time_us(lambda: fill_shape_b(memory, plan, 100.0),
                      repeats=repeats, number=1)
    cursor_t = time_us(run_cursor, repeats=repeats, number=1)
    return {
        "accesses": count,
        "table_us": table_t.best_us,
        "cursor_us": cursor_t.best_us,
        "table_words": plan.length,  # ΔM storage the cursor avoids
    }


def run_special_ablation(
    *, p: int = PAPER_P, block_sizes=TABLE1_BLOCK_SIZES, repeats: int = 3
) -> list[tuple[int, int, float, float]]:
    """A3: ``(k, s, lattice_us, special_us)`` with ``s = k//2 + 1`` so the
    Hiranandani condition ``s mod pk < k`` holds."""
    m = p // 2
    out = []
    for k in block_sizes:
        s = k // 2 + 1
        lat = time_us(lambda: compute_access_table(p, k, 0, s, m), repeats=repeats)
        spc = time_us(lambda: special_access_table(p, k, 0, s, m), repeats=repeats)
        out.append((k, s, lat.best_us, spc.best_us))
    return out


def main(argv: list[str] | None = None) -> None:
    """CLI entry point; see the module docstring for what it prints."""
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--repeats", type=int, default=3)
    args = parser.parse_args(argv)

    print("A1: sorting baseline sort-routine choice (s=99, p=32, one rank)")
    rows = run_sort_ablation(repeats=args.repeats)
    print(format_table(
        ["k", "Lattice (us)", "Sorting+timsort (us)", "Sorting+radix (us)"], rows
    ))
    print()
    print("A2: materialized table vs table-free R/L cursor (k=64, s=9)")
    gen = run_generator_ablation(repeats=args.repeats)
    print(format_table(
        ["accesses", "table (us)", "cursor (us)", "table words saved"],
        [(gen["accesses"], gen["table_us"], gen["cursor_us"], gen["table_words"])],
    ))
    print()
    print("A3: lattice vs Hiranandani special case (s = k/2+1, both O(k))")
    rows = run_special_ablation(repeats=args.repeats)
    print(format_table(["k", "s", "Lattice (us)", "Special (us)"], rows))


if __name__ == "__main__":
    main()
