"""The paper's benchmark parameter grids (Section 6).

Table 1 / Figure 7: ``p = 32``, ``l = 0``, block sizes ``k = 4..512``
(powers of two; the paper omits k=1,2 as negligible), strides
``s in {7, 99, k+1, pk-1, pk+1}`` -- the last two chosen because they
produce reversely / properly sorted access sequences, stressing the
sorting baseline.

Table 2: node-code execution with 10,000 assignments per processor,
``k in {4, 32, 256}``, ``s in {3, 15, 99}``, upper bound scaled with the
stride to keep the access count constant.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = [
    "PAPER_P",
    "TABLE1_BLOCK_SIZES",
    "TABLE2_BLOCK_SIZES",
    "TABLE2_STRIDES",
    "TABLE2_ACCESSES_PER_PROC",
    "table1_strides",
    "table1_cases",
    "Table1Case",
    "Table2Case",
    "table2_cases",
]

#: Number of processors in every paper experiment.
PAPER_P = 32

#: Table 1 block sizes (k = 4 .. 512, powers of two).
TABLE1_BLOCK_SIZES = (4, 8, 16, 32, 64, 128, 256, 512)

TABLE2_BLOCK_SIZES = (4, 32, 256)
TABLE2_STRIDES = (3, 15, 99)
TABLE2_ACCESSES_PER_PROC = 10_000


@dataclass(frozen=True, slots=True)
class Table1Case:
    label: str  # column label, e.g. "s=pk-1"
    k: int
    s: int
    p: int = PAPER_P
    l: int = 0


def table1_strides(k: int, p: int = PAPER_P) -> dict[str, int]:
    """The five stride columns of Table 1 for a given block size."""
    return {
        "s=7": 7,
        "s=99": 99,
        "s=k+1": k + 1,
        "s=pk-1": p * k - 1,
        "s=pk+1": p * k + 1,
    }


def table1_cases(
    block_sizes=TABLE1_BLOCK_SIZES, p: int = PAPER_P
) -> list[Table1Case]:
    """All (k, stride-column) cells of Table 1 as Table1Case records."""
    out = []
    for k in block_sizes:
        for label, s in table1_strides(k, p).items():
            out.append(Table1Case(label, k, s, p))
    return out


@dataclass(frozen=True, slots=True)
class Table2Case:
    k: int
    s: int
    p: int = PAPER_P
    l: int = 0
    accesses_per_proc: int = TABLE2_ACCESSES_PER_PROC

    @property
    def upper(self) -> int:
        """Upper bound scaled in proportion to the stride so that each
        processor performs ``accesses_per_proc`` assignments (Section 6.2)."""
        total = self.accesses_per_proc * self.p
        return self.l + (total - 1) * self.s


def table2_cases(
    block_sizes=TABLE2_BLOCK_SIZES, strides=TABLE2_STRIDES, p: int = PAPER_P
) -> list[Table2Case]:
    """All (k, s) cells of Table 2 as Table2Case records."""
    return [Table2Case(k, s, p) for k in block_sizes for s in strides]
