"""Table 1: table-construction times, Lattice vs Sorting.

Regenerates the paper's Table 1 -- execution time in microseconds to
build the ΔM table for every ``(k, s)`` cell of the paper's grid,
reported as the maximum over all 32 simulated processors (the paper's
convention).  Run with::

    python -m repro.bench.table1 [--quick]

``--quick`` times a single representative rank instead of the max over
all 32 (about 30x faster, same shape).
"""

from __future__ import annotations

import argparse
from dataclasses import dataclass

from ..core.access import compute_access_table
from ..core.baselines.sorting import sorting_access_table
from .report import format_markdown, format_table
from .timers import Timing, max_over_ranks, time_us
from .workloads import PAPER_P, TABLE1_BLOCK_SIZES, table1_strides

__all__ = ["Table1Row", "run_table1", "main"]


@dataclass(frozen=True, slots=True)
class Table1Row:
    k: int
    results: dict  # label -> (lattice_us, sorting_us)


def _measure(
    p: int, k: int, l: int, s: int, *, full: bool, repeats: int
) -> tuple[float, float]:
    def lattice_fn(m: int):
        return lambda: compute_access_table(p, k, l, s, m)

    def sorting_fn(m: int):
        return lambda: sorting_access_table(p, k, l, s, m)

    if full:
        lat = max_over_ranks(lattice_fn, p, repeats=repeats)
        srt = max_over_ranks(sorting_fn, p, repeats=repeats)
    else:
        m = p // 2
        lat = time_us(lattice_fn(m), repeats=repeats)
        srt = time_us(sorting_fn(m), repeats=repeats)
    return lat.best_us, srt.best_us


def run_table1(
    *,
    p: int = PAPER_P,
    l: int = 0,
    block_sizes=TABLE1_BLOCK_SIZES,
    full: bool = False,
    repeats: int = 3,
) -> list[Table1Row]:
    """Measure every Table 1 cell; see module docstring."""
    rows = []
    for k in block_sizes:
        results = {}
        for label, s in table1_strides(k, p).items():
            results[label] = _measure(p, k, l, s, full=full, repeats=repeats)
        rows.append(Table1Row(k, results))
    return rows


def render(rows: list[Table1Row], *, markdown: bool = False) -> str:
    labels = list(rows[0].results.keys())
    headers = ["Block size"] + [
        f"{label} {alg}" for label in labels for alg in ("Lattice", "Sorting")
    ]
    body = []
    for row in rows:
        cells: list = [f"k={row.k}"]
        for label in labels:
            lat, srt = row.results[label]
            cells.extend([lat, srt])
        body.append(cells)
    fmt = format_markdown if markdown else format_table
    return fmt(headers, body)


def render_speedups(rows: list[Table1Row], *, markdown: bool = False) -> str:
    labels = list(rows[0].results.keys())
    headers = ["Block size"] + [f"{label} speedup" for label in labels]
    body = []
    for row in rows:
        cells: list = [f"k={row.k}"]
        for label in labels:
            lat, srt = row.results[label]
            cells.append(srt / lat)
        body.append(cells)
    fmt = format_markdown if markdown else format_table
    return fmt(headers, body)


def main(argv: list[str] | None = None) -> None:
    """CLI entry point; see the module docstring for what it prints."""
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--quick", action="store_true",
                        help="time one representative rank instead of max over all")
    parser.add_argument("--markdown", action="store_true")
    parser.add_argument("--repeats", type=int, default=3)
    args = parser.parse_args(argv)
    rows = run_table1(full=not args.quick, repeats=args.repeats)
    print("Table 1: table-construction time in microseconds "
          f"(p={PAPER_P}, l=0; {'max over ranks' if not args.quick else 'one rank'})")
    print(render(rows, markdown=args.markdown))
    print()
    print("Sorting/Lattice speedup (paper: grows with k, ~5-9x at k=512)")
    print(render_speedups(rows, markdown=args.markdown))


if __name__ == "__main__":
    main()
