"""Table 2: node-code execution times for the Figure 8 shapes.

Regenerates the paper's Table 2 -- time for one processor to perform
10,000 strided assignments using each node-code shape (a)-(d), plus our
vectorized ablation shape (v).  The upper bound is scaled with the
stride so the access count stays constant, exactly as in Section 6.2.
Run with::

    python -m repro.bench.table2
"""

from __future__ import annotations

import argparse

import numpy as np

from ..core.counting import local_allocation_size
from ..runtime.address import make_plan
from ..runtime.codegen import SHAPES
from .report import format_markdown, format_table
from .timers import time_us
from .workloads import PAPER_P, Table2Case, table2_cases

__all__ = ["run_table2", "main"]


def _prepare(case: Table2Case, m: int):
    plan = make_plan(case.p, case.k, case.l, case.upper, case.s, m)
    size = local_allocation_size(case.p, case.k, case.upper + 1, m)
    memory = np.zeros(size, dtype=np.float64)
    return plan, memory


def run_table2(
    *,
    cases: list[Table2Case] | None = None,
    shapes: str = "abcdv",
    m: int | None = None,
    repeats: int = 3,
) -> list[dict]:
    """Measure every Table 2 cell.  ``m`` picks the measured rank
    (default: rank p//2; the paper reports max over ranks but the shapes'
    per-element costs are rank-independent)."""
    if cases is None:
        cases = table2_cases()
    rows = []
    for case in cases:
        rank = case.p // 2 if m is None else m
        plan, memory = _prepare(case, rank)
        expect = plan.count
        row = {"k": case.k, "s": case.s, "accesses": expect}
        for shape in shapes:
            fn = SHAPES[shape]
            # Sanity: the shape writes exactly the owned elements.
            written = fn(memory, plan, 100.0)
            if written != expect:
                raise AssertionError(
                    f"shape {shape} wrote {written} of {expect} elements "
                    f"for {case}"
                )
            timing = time_us(lambda: fn(memory, plan, 100.0),
                             repeats=repeats, number=1)
            row[shape] = timing.best_us
        rows.append(row)
    return rows


def render(rows: list[dict], shapes: str = "abcdv", *, markdown: bool = False) -> str:
    headers = ["k", "s", "accesses"] + [f"shape ({c})" for c in shapes]
    body = [
        [row["k"], row["s"], row["accesses"]] + [row[c] for c in shapes]
        for row in rows
    ]
    fmt = format_markdown if markdown else format_table
    return fmt(headers, body)


def main(argv: list[str] | None = None) -> None:
    """CLI entry point; see the module docstring for what it prints."""
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--shapes", default="abcdv")
    parser.add_argument("--markdown", action="store_true")
    parser.add_argument("--repeats", type=int, default=3)
    args = parser.parse_args(argv)
    rows = run_table2(shapes=args.shapes, repeats=args.repeats)
    print(f"Table 2: node-code time (us) for 10,000 assignments/processor (p={PAPER_P})")
    print(render(rows, args.shapes, markdown=args.markdown))
    print()
    print("Paper's shape ordering: (a) mod is worst by far; (d) fastest of a-d.")
    print("Shape (v) is our NumPy-vectorized ablation (not in the paper).")


if __name__ == "__main__":
    main()
