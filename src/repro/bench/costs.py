"""Modeled communication costs of runtime schedules (simulated iPSC).

Applies the alpha-beta-hop cost model (:mod:`repro.machine.costmodel`)
to the schedules the runtime generates -- redistribution and transpose
-- under the iPSC/860's hypercube topology vs an ideal crossbar.  This
is the "what would this schedule cost on the paper's machine" figure;
wall-clock Python timing of the same operations lives in
``benchmarks/bench_redistribution.py`` and ``bench_runtime.py``.

Run with ``python -m repro.bench.costs``.
"""

from __future__ import annotations

import argparse

from ..distribution.align import Alignment
from ..distribution.array import AxisMap, DistributedArray
from ..distribution.dist import Block, CyclicK, ProcessorGrid
from ..distribution.section import RegularSection
from ..machine.costmodel import CostModel, estimate_superstep
from ..machine.topology import CrossbarTopology, HypercubeTopology
from ..runtime.commsets2d import compute_comm_schedule_2d
from ..runtime.redistribute import plan_redistribution
from .report import format_table

__all__ = ["run_redistribution_costs", "run_transpose_costs", "main"]


def _vector(name: str, n: int, p: int, dist) -> DistributedArray:
    grid = ProcessorGrid("P", (p,))
    return DistributedArray(name, (n,), grid, (AxisMap(dist, grid_axis=0),))


def run_redistribution_costs(
    *, n: int = 4096, cube_dim: int = 5, model: CostModel | None = None
) -> list[tuple[str, int, int, float, float]]:
    """Per-pair ``(label, remote_elements, messages, hypercube_us,
    crossbar_us)`` for representative redistribution patterns."""
    p = 1 << cube_dim
    cube = HypercubeTopology(cube_dim)
    xbar = CrossbarTopology(p)
    pairs = [
        ("cyclic(1)->block", CyclicK(1), Block()),
        ("block->cyclic(1)", Block(), CyclicK(1)),
        ("cyclic(4)->cyclic(32)", CyclicK(4), CyclicK(32)),
        ("cyclic(32)->cyclic(4)", CyclicK(32), CyclicK(4)),
        ("cyclic(8)->cyclic(8)", CyclicK(8), CyclicK(8)),
    ]
    out = []
    for label, src_dist, dst_dist in pairs:
        src = _vector("S", n, p, src_dist)
        dst = _vector("D", n, p, dst_dist)
        schedule, stats = plan_redistribution(dst, src)
        cube_est = estimate_superstep(schedule.transfers, p, cube, model)
        xbar_est = estimate_superstep(schedule.transfers, p, xbar, model)
        out.append(
            (label, stats.remote_elements, stats.messages,
             cube_est.time_us, xbar_est.time_us)
        )
    return out


def run_transpose_costs(
    *, n: int = 256, model: CostModel | None = None
) -> list[tuple[str, int, float]]:
    """Transpose schedule cost on a 2x2 grid for several block sizes."""
    grid = ProcessorGrid("G", (2, 2))
    cube = HypercubeTopology(2)
    out = []
    for k in (1, 4, 16, 64):
        a = DistributedArray(
            "A", (n, n), grid,
            (AxisMap(CyclicK(k), grid_axis=0), AxisMap(CyclicK(k), grid_axis=1)),
        )
        sec = (RegularSection(0, n - 1, 1), RegularSection(0, n - 1, 1))
        schedule = compute_comm_schedule_2d(a, sec, a, sec, rhs_dims=(1, 0))
        est = estimate_superstep(schedule.transfers, 4, cube, model)
        out.append((f"cyclic({k})", schedule.communicated_elements, est.time_us))
    return out


def main(argv: list[str] | None = None) -> None:
    """CLI entry point; see the module docstring for what it prints."""
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--n", type=int, default=4096)
    parser.add_argument(
        "--calibrated", metavar="PROFILE.json", default=None,
        help="also price every schedule under the fitted cost model from "
             "a ``python -m repro profile`` output (two extra columns)",
    )
    args = parser.parse_args(argv)

    fitted = None
    if args.calibrated:
        from ..obs.calibrate import load_model

        fitted = load_model(args.calibrated)
        print(
            f"calibrated model from {args.calibrated}: "
            f"alpha={fitted.alpha_us:.1f}us "
            f"beta={fitted.beta_us_per_byte:.4f}us/B "
            f"gamma={fitted.gamma_us_per_hop:.1f}us/hop "
            f"(+{fitted.fixed_us:.1f}us fixed per superstep)"
        )
        print()

    print("Modeled redistribution cost (alpha=70us, beta=0.36us/B, "
          "gamma=10us/hop; 32-rank 5-cube vs crossbar)")
    rows = run_redistribution_costs(n=args.n)
    headers = ["pattern", "remote elems", "messages",
               "hypercube (us)", "crossbar (us)"]
    if fitted is not None:
        # Default and calibrated prices side by side: the relative
        # ranking of layouts is what a planner consumes, and it can
        # change when measured beta dominates modeled alpha.
        calibrated = run_redistribution_costs(n=args.n, model=fitted)
        rows = [
            (*row, crow[3] + fitted.fixed_us, crow[4] + fitted.fixed_us)
            for row, crow in zip(rows, calibrated)
        ]
        headers += ["calib cube (us)", "calib xbar (us)"]
    print(format_table(headers, rows))
    print()
    print("Modeled transpose cost (2x2 grid = 2-cube, 256x256 array)")
    rows = run_transpose_costs()
    headers = ["distribution", "remote elems", "modeled (us)"]
    if fitted is not None:
        calibrated = run_transpose_costs(model=fitted)
        rows = [
            (*row, crow[2] + fitted.fixed_us)
            for row, crow in zip(rows, calibrated)
        ]
        headers += ["calibrated (us)"]
    print(format_table(headers, rows))


if __name__ == "__main__":
    main()
