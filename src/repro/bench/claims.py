"""Sensitivity experiments for the paper's Section 6.1 side claims.

Two claims precede the main tables:

* "The lower bound of the regular section has almost no influence on
  the running time of the algorithm" -- so every Table 1 cell uses
  ``l = 0``;
* "the effects of varying the number of processors are only minor" --
  so every cell uses ``p = 32``.

These harnesses vary exactly those knobs and report the spread, letting
EXPERIMENTS.md confirm (or bound) the claims on this platform.  Run with
``python -m repro.bench.claims``.
"""

from __future__ import annotations

import argparse

from ..core.access import compute_access_table
from .report import format_table
from .timers import time_us

__all__ = ["run_lower_bound_claim", "run_processor_claim", "main"]

LOWER_BOUNDS = (0, 1, 17, 1_000, 1_000_003)
PROCESSOR_COUNTS = (4, 8, 16, 32, 64, 128)


def run_lower_bound_claim(
    *, p: int = 32, k: int = 64, s: int = 99, repeats: int = 3
) -> list[tuple[int, float]]:
    """Construction time as ``l`` varies (everything else fixed)."""
    m = p // 2
    out = []
    for l in LOWER_BOUNDS:
        t = time_us(lambda: compute_access_table(p, k, l, s, m), repeats=repeats)
        out.append((l, t.best_us))
    return out


def run_processor_claim(
    *, k: int = 64, s: int = 99, repeats: int = 3
) -> list[tuple[int, float]]:
    """Construction time as ``p`` varies (k fixed -- the per-processor
    work is O(k + log), so p should matter only through the gcd)."""
    out = []
    for p in PROCESSOR_COUNTS:
        m = p // 2
        t = time_us(lambda: compute_access_table(p, k, 0, s, m), repeats=repeats)
        out.append((p, t.best_us))
    return out


def spread(rows: list[tuple[int, float]]) -> float:
    times = [t for _, t in rows]
    return max(times) / min(times)


def main(argv: list[str] | None = None) -> None:
    """CLI entry point; see the module docstring for what it prints."""
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--repeats", type=int, default=3)
    args = parser.parse_args(argv)

    rows = run_lower_bound_claim(repeats=args.repeats)
    print("Claim 1: lower bound l has almost no influence (k=64, s=99, p=32)")
    print(format_table(["l", "Lattice (us)"], rows))
    print(f"max/min spread: {spread(rows):.2f}x\n")

    rows = run_processor_claim(repeats=args.repeats)
    print("Claim 2: processor count has only minor effects (k=64, s=99)")
    print(format_table(["p", "Lattice (us)"], rows))
    print(f"max/min spread: {spread(rows):.2f}x")


if __name__ == "__main__":
    main()
