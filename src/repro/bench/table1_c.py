"""Table 1 in compiled C: both table constructions, natively timed.

The Python Table 1 (:mod:`repro.bench.table1`) inherits interpreter
asymmetries (the baseline's sort runs in C, the lattice walk does not).
This harness removes them: a single C translation unit implements the
Figure 5 lattice construction AND the Chatterjee et al. sorting
construction (``qsort`` comparison sort, plus an LSD radix sort used
for k >= 64 as in the paper), compiled at ``-O2`` and timed natively --
the paper's headline experiment on the host CPU.

The C implementations are line-for-line transcriptions of
:mod:`repro.core.access` and :mod:`repro.core.baselines.sorting`; the
emitted program cross-checks the two algorithms' tables against each
other on every invocation and aborts on mismatch, so the timings are
only ever reported for agreeing implementations.

Run with ``python -m repro.bench.table1_c`` (requires ``cc``/``gcc``).
"""

from __future__ import annotations

import argparse
import subprocess
from pathlib import Path

from ..runtime.native.build import NativeBuildError, build_cached, find_compiler
from .report import format_markdown, format_table
from .workloads import PAPER_P, TABLE1_BLOCK_SIZES, table1_strides

__all__ = ["compiler_available", "run_table1_c", "main", "C_SOURCE"]

C_SOURCE = r"""
/* Table 1 reproduction: lattice (Figure 5) vs sorting (Chatterjee et al.)
 * table construction in C.  Usage: table1 <alg> <p> <k> <l> <s> <m> <reps>
 * where <alg> is "lattice" or "sorting"; prints best microseconds.
 */
#include <stdio.h>
#include <stdlib.h>
#include <string.h>
#include <time.h>

static long ext_euclid(long a, long b, long *x_out)
{
    long old_r = a, r = b, old_x = 1, x = 0, q, t;
    while (r != 0) {
        q = old_r / r;
        t = old_r - q * r; old_r = r; r = t;
        t = old_x - q * x; old_x = x; x = t;
    }
    if (old_r < 0) { old_r = -old_r; old_x = -old_x; }
    *x_out = old_x;
    return old_r;
}

static long mod_pos(long v, long n) { long r = v % n; return r < 0 ? r + n : r; }

/* ------------------------------------------------------------------ */
/* Figure 5: the lattice algorithm.  Returns the cycle length and fills
 * AM (capacity k); *start_out gets the starting location. */
static long lattice_table(long p, long k, long l, long s, long m,
                          long *AM, long *start_out)
{
    long pk = p * k, x, d, period;
    d = ext_euclid(s, pk, &x);
    period = pk / d;
    long lo = k * m - l, first = lo + mod_pos(-lo, d);
    long start = -1, length = 0, i, j, loc;
    for (i = first; i < lo + k; i += d) {
        j = mod_pos((i / d) * x, period);
        loc = l + j * s;
        if (start < 0 || loc < start) start = loc;
        length++;
    }
    *start_out = start;
    if (length == 0) return 0;
    if (length == 1) { AM[0] = k * (s / d); return 1; }

    /* Basis: min/max of the initial cycle (offsets d..k-1 step d). */
    {
        long mn = -1, mx = -1, offset;
        for (offset = d; offset < k; offset += d) {
            j = mod_pos((offset / d) * x, period);
            loc = j * s;
            if (mn < 0 || loc < mn) mn = loc;
            if (loc > mx) mx = loc;
        }
        {
            long br = mn % pk, ar = mn / pk;
            long bl = mx % pk, al = mx / pk - s / d;
            long gap_r = ar * k + br, gap_l = -(al * k + bl);
            long off = start % pk, hi = k * (m + 1), low = k * m, idx = 0;
            while (idx < length) {
                while (idx < length && off + br < hi) {
                    AM[idx++] = gap_r;
                    off += br;
                }
                if (idx == length) break;
                {
                    long gap = gap_l;
                    off -= bl;
                    if (off < low) { gap += gap_r; off += br; }
                    AM[idx++] = gap;
                }
            }
        }
    }
    return length;
}

/* ------------------------------------------------------------------ */
/* Chatterjee et al.: per-offset solutions, sort, gap scan. */
static int cmp_long(const void *a, const void *b)
{
    long x = *(const long *)a, y = *(const long *)b;
    return (x > y) - (x < y);
}

static void radix_sort(long *v, long n, long *scratch)
{
    long max = 0, i, shift;
    for (i = 0; i < n; i++) if (v[i] > max) max = v[i];
    for (shift = 0; (max >> shift) != 0; shift += 8) {
        long counts[257];
        memset(counts, 0, sizeof counts);
        for (i = 0; i < n; i++) counts[((v[i] >> shift) & 255) + 1]++;
        for (i = 1; i <= 256; i++) counts[i] += counts[i - 1];
        for (i = 0; i < n; i++) scratch[counts[(v[i] >> shift) & 255]++] = v[i];
        memcpy(v, scratch, n * sizeof(long));
    }
}

static long sorting_table(long p, long k, long l, long s, long m,
                          long *AM, long *start_out, long *idxbuf, long *scratch)
{
    long pk = p * k, x, d, period;
    d = ext_euclid(s, pk, &x);
    period = pk / d;
    long lo = k * m - l, first = lo + mod_pos(-lo, d);
    long length = 0, i, j;
    for (i = first; i < lo + k; i += d)
        idxbuf[length++] = l + mod_pos((i / d) * x, period) * s;
    if (length == 0) { *start_out = -1; return 0; }
    if (length == 1) { *start_out = idxbuf[0]; AM[0] = k * (s / d); return 1; }
    if (k >= 64) radix_sort(idxbuf, length, scratch);
    else qsort(idxbuf, length, sizeof(long), cmp_long);
    *start_out = idxbuf[0];
    {
        long t, prev_addr, addr, row, b;
        row = idxbuf[0] / pk; b = idxbuf[0] % pk;
        prev_addr = row * k + (b - k * m);
        for (t = 1; t < length; t++) {
            row = idxbuf[t] / pk; b = idxbuf[t] % pk;
            addr = row * k + (b - k * m);
            AM[t - 1] = addr - prev_addr;
            prev_addr = addr;
        }
        row = idxbuf[0] / pk; b = idxbuf[0] % pk;
        AM[length - 1] = (row * k + (b - k * m)) + k * (s / d) - prev_addr;
    }
    return length;
}

static double now_us(void)
{
    struct timespec ts;
    clock_gettime(CLOCK_MONOTONIC, &ts);
    return ts.tv_sec * 1e6 + ts.tv_nsec * 1e-3;
}

int main(int argc, char **argv)
{
    long p, k, l, s, m, reps, r, len1, len2, st1, st2, i;
    long *AM1, *AM2, *idxbuf, *scratch;
    double best = 1e30;
    const char *alg;
    if (argc != 8) {
        fprintf(stderr, "usage: %s <lattice|sorting> p k l s m reps\n", argv[0]);
        return 2;
    }
    alg = argv[1];
    p = atol(argv[2]); k = atol(argv[3]); l = atol(argv[4]);
    s = atol(argv[5]); m = atol(argv[6]); reps = atol(argv[7]);
    AM1 = malloc(k * sizeof(long)); AM2 = malloc(k * sizeof(long));
    idxbuf = malloc(k * sizeof(long)); scratch = malloc(k * sizeof(long));

    /* Cross-check the two implementations before timing anything. */
    len1 = lattice_table(p, k, l, s, m, AM1, &st1);
    len2 = sorting_table(p, k, l, s, m, AM2, &st2, idxbuf, scratch);
    if (len1 != len2 || st1 != st2) { fprintf(stderr, "MISMATCH hdr\n"); return 3; }
    for (i = 0; i < len1; i++)
        if (AM1[i] != AM2[i]) { fprintf(stderr, "MISMATCH AM[%ld]\n", i); return 3; }

    for (r = 0; r < reps; r++) {
        double t0 = now_us(), dt;
        if (alg[0] == 'l') lattice_table(p, k, l, s, m, AM1, &st1);
        else sorting_table(p, k, l, s, m, AM2, &st2, idxbuf, scratch);
        dt = now_us() - t0;
        if (dt < best) best = dt;
    }
    printf("%.4f\n", best);
    free(AM1); free(AM2); free(idxbuf); free(scratch);
    return 0;
}
"""


def compiler_available() -> str | None:
    """Path of the host C compiler, or None (delegates to the native
    subsystem's discovery, including the ``REPRO_NATIVE_CC`` pin)."""
    return find_compiler()


def _build() -> Path:
    """The Table 1 measurement binary, via the hashed artifact cache
    (compiled once per source/compiler revision, then reused forever)."""
    return build_cached(C_SOURCE, {"unit": "table1_bench"}, kind="exe")


def run_table1_c(
    *,
    p: int = PAPER_P,
    l: int = 0,
    block_sizes=TABLE1_BLOCK_SIZES,
    reps: int = 2000,
) -> list[dict]:
    """Per-k rows of ``{label: (lattice_us, sorting_us)}`` measured in C
    (rank p//2, as in the Python quick mode).  Raises
    :class:`~repro.runtime.native.NativeBuildError` when the binary must
    be compiled and no C compiler is available."""
    binary = _build()
    rows = []
    m = p // 2
    for k in block_sizes:
        results = {}
        for label, s in table1_strides(k, p).items():
            cell = []
            for alg in ("lattice", "sorting"):
                out = subprocess.run(
                    [str(binary), alg, str(p), str(k), str(l), str(s),
                     str(m), str(reps)],
                    check=True, capture_output=True, text=True,
                )
                cell.append(float(out.stdout.strip()))
            results[label] = tuple(cell)
        rows.append({"k": k, "results": results})
    return rows


def render(rows: list[dict], *, markdown: bool = False) -> str:
    labels = list(rows[0]["results"].keys())
    headers = ["Block size"] + [
        f"{label} {alg}" for label in labels for alg in ("Lattice", "Sorting")
    ]
    body = []
    for row in rows:
        cells: list = [f"k={row['k']}"]
        for label in labels:
            lat, srt = row["results"][label]
            cells.extend([lat, srt])
        body.append(cells)
    fmt = format_markdown if markdown else format_table
    return fmt(headers, body)


def render_speedups(rows: list[dict], *, markdown: bool = False) -> str:
    labels = list(rows[0]["results"].keys())
    headers = ["Block size"] + [f"{label} speedup" for label in labels]
    body = []
    for row in rows:
        cells: list = [f"k={row['k']}"]
        for label in labels:
            lat, srt = row["results"][label]
            cells.append(srt / lat if lat else float("inf"))
        body.append(cells)
    fmt = format_markdown if markdown else format_table
    return fmt(headers, body)


def main(argv: list[str] | None = None) -> None:
    """CLI entry point; see the module docstring for what it prints."""
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--reps", type=int, default=2000)
    parser.add_argument("--markdown", action="store_true")
    args = parser.parse_args(argv)
    try:
        rows = run_table1_c(reps=args.reps)
    except NativeBuildError as exc:
        raise SystemExit(f"cannot build Table 1 harness: {exc}")
    print(f"Table 1 in compiled C (-O2): construction time in us "
          f"(p={PAPER_P}, l=0, rank {PAPER_P // 2}, best of {args.reps})")
    print(render(rows, markdown=args.markdown))
    print()
    print("Sorting/Lattice speedup (paper: 1.2x at k=4 growing to ~8x at "
          "k=512, clamped by radix above k=64)")
    print(render_speedups(rows, markdown=args.markdown))


if __name__ == "__main__":
    main()
