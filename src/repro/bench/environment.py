"""Host environment metadata for benchmark reports.

Every ``BENCH_*.json`` embeds :func:`environment_metadata` so numbers
can be compared across machines and across time: the paper's Table 1/2
figures are meaningless without "on an i860", and ours are meaningless
without the CPU model, the Python, and -- for the native-kernel columns
-- the exact C compiler (or ``"none"`` when the run fell back to NumPy).

Everything here is best-effort and allocation-free of external
dependencies: unknown fields degrade to ``"unknown"`` rather than
raising, because a bench run must never die on metadata.
"""

from __future__ import annotations

import platform
import sys

__all__ = ["cpu_model", "environment_metadata"]


def cpu_model() -> str:
    """Human CPU model string (``/proc/cpuinfo`` on Linux, else
    :func:`platform.processor`, else ``"unknown"``)."""
    try:
        with open("/proc/cpuinfo") as fh:
            for line in fh:
                if line.lower().startswith(("model name", "hardware", "cpu model")):
                    return line.split(":", 1)[1].strip()
    except OSError:
        pass
    return platform.processor() or platform.machine() or "unknown"


def environment_metadata() -> dict:
    """JSON-ready description of the benchmarking host.

    Keys: ``cpu``, ``cpu_count``, ``python``, ``platform``, ``numpy``,
    ``compiler`` (the native subsystem's :func:`compiler_id`, ``"none"``
    when no C compiler is usable -- which is itself a result worth
    recording: it means every native column in that report is a NumPy
    fallback).
    """
    import os

    import numpy as np

    from ..runtime.native.build import compiler_id

    return {
        "cpu": cpu_model(),
        "cpu_count": os.cpu_count() or 0,
        "python": sys.version.split()[0],
        "platform": platform.platform(),
        "numpy": np.__version__,
        "compiler": compiler_id(),
    }
