"""Table 2 in compiled C: the emitted Figure 8 node code, timed natively.

The Python Table 2 (:mod:`repro.bench.table2`) compresses the paper's
shape ratios because the interpreter dominates; this harness closes the
platform gap: for every Table 2 cell it *emits the C node code* the
compiler would generate (:mod:`repro.runtime.emit_c`), compiles it with
the host C compiler at ``-O2``, runs it natively, and tabulates the
best per-invocation microseconds -- the same experiment the paper ran
on the i860, modulo thirty years of CPUs.

Run with ``python -m repro.bench.table2_c`` (requires ``cc``/``gcc``).
"""

from __future__ import annotations

import argparse
import shutil
import subprocess
import tempfile
from pathlib import Path

from ..core.counting import local_allocation_size
from ..runtime.address import make_plan
from ..runtime.emit_c import emit_timing_harness
from .report import format_markdown, format_table
from .workloads import PAPER_P, Table2Case, table2_cases

__all__ = ["compiler_available", "run_table2_c", "main"]


def compiler_available() -> str | None:
    """Path of the host C compiler (cc or gcc), or None."""
    return shutil.which("cc") or shutil.which("gcc")


def _measure_cell(
    case: Table2Case, shape: str, cc: str, workdir: Path, reps: int
) -> float:
    rank = case.p // 2
    plan = make_plan(case.p, case.k, case.l, case.upper, case.s, rank)
    size = local_allocation_size(case.p, case.k, case.upper + 1, rank)
    source = workdir / f"node_k{case.k}_s{case.s}_{shape}.c"
    binary = workdir / f"node_k{case.k}_s{case.s}_{shape}"
    source.write_text(emit_timing_harness(plan, shape, memory_size=size))
    subprocess.run(
        [cc, "-O2", "-o", str(binary), str(source)],
        check=True, capture_output=True,
    )
    out = subprocess.run(
        [str(binary), str(reps)], check=True, capture_output=True, text=True
    )
    return float(out.stdout.strip())


def run_table2_c(
    *,
    cases: list[Table2Case] | None = None,
    shapes: str = "abcd",
    reps: int = 300,
) -> list[dict]:
    """Measure every Table 2 cell with compiled C.  Raises RuntimeError
    when no C compiler is available."""
    cc = compiler_available()
    if cc is None:
        raise RuntimeError("no C compiler (cc/gcc) on this host")
    if cases is None:
        cases = table2_cases()
    rows = []
    with tempfile.TemporaryDirectory(prefix="repro_table2c_") as tmp:
        workdir = Path(tmp)
        for case in cases:
            row = {"k": case.k, "s": case.s}
            for shape in shapes:
                row[shape] = _measure_cell(case, shape, cc, workdir, reps)
            rows.append(row)
    return rows


def render(rows: list[dict], shapes: str = "abcd", *, markdown: bool = False) -> str:
    headers = ["k", "s"] + [f"shape ({c}) us" for c in shapes]
    body = [[row["k"], row["s"]] + [row[c] for c in shapes] for row in rows]
    fmt = format_markdown if markdown else format_table
    return fmt(headers, body)


def main(argv: list[str] | None = None) -> None:
    """CLI entry point; see the module docstring for what it prints."""
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--shapes", default="abcd")
    parser.add_argument("--reps", type=int, default=300)
    parser.add_argument("--markdown", action="store_true")
    args = parser.parse_args(argv)
    if compiler_available() is None:
        raise SystemExit("no C compiler (cc/gcc) found on this host")
    rows = run_table2_c(shapes=args.shapes, reps=args.reps)
    print(f"Table 2 in compiled C (-O2): 10,000 assignments/processor "
          f"(p={PAPER_P}), best of {args.reps}")
    print(render(rows, args.shapes, markdown=args.markdown))
    print()
    print("Paper (i860): (a) ~18,000 us dominated by integer divide; "
          "(d) fastest of a-d (~2,300-3,000 us).")


if __name__ == "__main__":
    main()
