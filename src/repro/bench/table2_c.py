"""Table 2 in compiled C: the emitted Figure 8 node code, timed natively.

The Python Table 2 (:mod:`repro.bench.table2`) compresses the paper's
shape ratios because the interpreter dominates; this harness closes the
platform gap: for every Table 2 cell it *emits the C node code* the
compiler would generate (:mod:`repro.runtime.emit_c`), builds it through
the hashed native artifact cache (:mod:`repro.runtime.native.build` --
one shared object per (plan, shape) descriptor, compiled once ever, not
once per run), loads it in-process, and tabulates the best
per-invocation microseconds measured by the library's own native timing
loop -- the same experiment the paper ran on the i860, modulo thirty
years of CPUs.

Run with ``python -m repro table2c`` (requires ``cc``/``gcc``/``clang``
on first use; warm caches need no compiler at all).  ``--quick`` is the
CI smoke mode: a 2x2 corner of the grid at few reps, there to keep the
emit -> compile -> execute path from silently rotting.
"""

from __future__ import annotations

import argparse
import ctypes

from ..core.counting import local_allocation_size
from ..runtime.address import make_plan
from ..runtime.emit_c import emit_timing_library
from ..runtime.native.build import NativeBuildError, find_compiler, load_library
from .report import format_markdown, format_table
from .workloads import PAPER_P, Table2Case, table2_cases

__all__ = ["compiler_available", "run_table2_c", "main"]


def compiler_available() -> str | None:
    """Path of the host C compiler, or None (delegates to the native
    subsystem's discovery, including the ``REPRO_NATIVE_CC`` pin)."""
    return find_compiler()


def _cell_library(case: Table2Case, shape: str) -> ctypes.CDLL:
    """The compiled timing library for one Table 2 cell, via the hashed
    artifact cache (a warm cache performs zero compilations)."""
    rank = case.p // 2
    plan = make_plan(case.p, case.k, case.l, case.upper, case.s, rank)
    size = local_allocation_size(case.p, case.k, case.upper + 1, rank)
    source = emit_timing_library(plan, shape, memory_size=size)
    lib = load_library(
        source,
        {
            "unit": "table2_cell",
            "shape": shape,
            "p": case.p, "k": case.k, "l": case.l, "s": case.s,
            "upper": case.upper, "rank": rank, "memory_size": size,
        },
        required_symbols=("repro_best_us", "node_code"),
    )
    lib.repro_best_us.argtypes = [ctypes.c_long]
    lib.repro_best_us.restype = ctypes.c_double
    return lib


def _measure_cell(case: Table2Case, shape: str, reps: int) -> float:
    best = float(_cell_library(case, shape).repro_best_us(reps))
    if best < 0:
        raise RuntimeError(f"native arena allocation failed for {case}")
    return best


def run_table2_c(
    *,
    cases: list[Table2Case] | None = None,
    shapes: str = "abcd",
    reps: int = 300,
) -> list[dict]:
    """Measure every Table 2 cell with compiled C.  Raises
    :class:`~repro.runtime.native.NativeBuildError` when a cell must be
    compiled and no C compiler is available."""
    if cases is None:
        cases = table2_cases()
    rows = []
    for case in cases:
        row = {"k": case.k, "s": case.s}
        for shape in shapes:
            row[shape] = _measure_cell(case, shape, reps)
        rows.append(row)
    return rows


def render(rows: list[dict], shapes: str = "abcd", *, markdown: bool = False) -> str:
    headers = ["k", "s"] + [f"shape ({c}) us" for c in shapes]
    body = [[row["k"], row["s"]] + [row[c] for c in shapes] for row in rows]
    fmt = format_markdown if markdown else format_table
    return fmt(headers, body)


def main(argv: list[str] | None = None) -> None:
    """CLI entry point; see the module docstring for what it prints."""
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--shapes", default="abcd")
    parser.add_argument("--reps", type=int, default=None)
    parser.add_argument("--markdown", action="store_true")
    parser.add_argument("--quick", action="store_true",
                        help="2x2 grid corner, few reps (CI smoke test)")
    args = parser.parse_args(argv)
    reps = args.reps if args.reps is not None else (20 if args.quick else 300)
    cases = table2_cases()
    if args.quick:
        cases = [c for c in cases if c.k <= 32 and c.s <= 15]
    try:
        rows = run_table2_c(cases=cases, shapes=args.shapes, reps=reps)
    except NativeBuildError as exc:
        raise SystemExit(f"cannot build Table 2 cells: {exc}")
    print(f"Table 2 in compiled C (-O2): 10,000 assignments/processor "
          f"(p={PAPER_P}), best of {reps}")
    print(render(rows, args.shapes, markdown=args.markdown))
    print()
    print("Paper (i860): (a) ~18,000 us dominated by integer divide; "
          "(d) fastest of a-d (~2,300-3,000 us).")


if __name__ == "__main__":
    main()
