"""Formatting helpers that print paper-style result tables.

Emits plain-text tables (aligned columns, like Table 1 / Table 2 in the
paper) and the same data as Markdown for EXPERIMENTS.md.
"""

from __future__ import annotations

from typing import Sequence

__all__ = ["format_table", "format_markdown", "format_csv", "ascii_plot"]


def _stringify(value) -> str:
    if isinstance(value, float):
        return f"{value:.1f}"
    return str(value)


def format_table(headers: Sequence[str], rows: Sequence[Sequence]) -> str:
    """Aligned plain-text table."""
    cells = [[_stringify(v) for v in row] for row in rows]
    widths = [
        max(len(h), *(len(row[i]) for row in cells)) if cells else len(h)
        for i, h in enumerate(headers)
    ]
    def fmt_row(row):
        return "  ".join(text.rjust(w) for text, w in zip(row, widths))

    lines = [fmt_row(headers), fmt_row(["-" * w for w in widths])]
    lines.extend(fmt_row(row) for row in cells)
    return "\n".join(lines)


def format_markdown(headers: Sequence[str], rows: Sequence[Sequence]) -> str:
    """GitHub-flavoured Markdown table."""
    lines = [
        "| " + " | ".join(headers) + " |",
        "|" + "|".join("---" for _ in headers) + "|",
    ]
    for row in rows:
        lines.append("| " + " | ".join(_stringify(v) for v in row) + " |")
    return "\n".join(lines)


def format_csv(headers: Sequence[str], rows: Sequence[Sequence]) -> str:
    """RFC-4180-ish CSV (quoted only when needed) for downstream plotting."""

    def cell(value) -> str:
        text = _stringify(value)
        if any(ch in text for ch in ',"\n'):
            text = '"' + text.replace('"', '""') + '"'
        return text

    lines = [",".join(cell(h) for h in headers)]
    lines.extend(",".join(cell(v) for v in row) for row in rows)
    return "\n".join(lines)


def ascii_plot(
    series: dict[str, list[tuple[float, float]]],
    *,
    width: int = 60,
    height: int = 18,
    logy: bool = False,
    title: str = "",
) -> str:
    """Minimal scatter/line plot for Figure 7 style comparisons.

    ``series`` maps a label to ``(x, y)`` points; each series is drawn
    with its own glyph.  Axes are annotated with min/max values.
    """
    import math

    glyphs = "ox+*#@"
    all_pts = [pt for pts in series.values() for pt in pts]
    if not all_pts:
        raise ValueError("nothing to plot")
    xs = [x for x, _ in all_pts]
    ys = [y for _, y in all_pts]
    if logy:
        if min(ys) <= 0:
            raise ValueError("log-scale plot requires positive y values")
        transform = math.log10
    else:
        transform = float
    ty = [transform(y) for y in ys]
    x_lo, x_hi = min(xs), max(xs)
    y_lo, y_hi = min(ty), max(ty)
    x_span = (x_hi - x_lo) or 1.0
    y_span = (y_hi - y_lo) or 1.0

    grid = [[" "] * width for _ in range(height)]
    for glyph, (label, pts) in zip(glyphs, series.items()):
        for x, y in pts:
            col = round((x - x_lo) / x_span * (width - 1))
            row = height - 1 - round((transform(y) - y_lo) / y_span * (height - 1))
            grid[row][col] = glyph

    lines = []
    if title:
        lines.append(title)
    y_hi_label = f"{10 ** y_hi:.0f}" if logy else f"{y_hi:.0f}"
    y_lo_label = f"{10 ** y_lo:.0f}" if logy else f"{y_lo:.0f}"
    margin = max(len(y_hi_label), len(y_lo_label)) + 1
    for i, row in enumerate(grid):
        prefix = y_hi_label if i == 0 else (y_lo_label if i == height - 1 else "")
        lines.append(prefix.rjust(margin) + " |" + "".join(row))
    lines.append(" " * margin + " +" + "-" * width)
    lines.append(
        " " * margin + f"  {x_lo:<10.0f}" + f"{x_hi:>{width - 10}.0f}"
    )
    legend = "   ".join(
        f"{glyph} = {label}" for glyph, label in zip(glyphs, series.keys())
    )
    lines.append(" " * margin + "  " + legend)
    return "\n".join(lines)
