"""Timing discipline for the reproduction benchmarks.

The paper reports microseconds from ``dclock`` on the iPSC/860,
maximums over 32 processors.  Here we time on one host with
``time.perf_counter_ns`` using a min-of-repeats discipline (the standard
way to suppress scheduler noise -- see the "no optimization without
measuring" guidance in the project's HPC guides), and take maxima over
simulated processor ranks where the paper did.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Callable

__all__ = ["Timing", "time_us", "max_over_ranks"]


@dataclass(frozen=True, slots=True)
class Timing:
    """One measurement: best (min) and mean over repeats, in microseconds."""

    best_us: float
    mean_us: float
    repeats: int


def time_us(
    fn: Callable[[], object],
    *,
    repeats: int = 5,
    number: int | None = None,
    target_ns: int = 2_000_000,
) -> Timing:
    """Time ``fn`` and return microseconds per call.

    ``number`` calls are made per repeat; when ``None`` it is calibrated
    so one repeat lasts roughly ``target_ns`` (default 2 ms), keeping
    short functions measurable without making long ones crawl.
    """
    if repeats <= 0:
        raise ValueError(f"repeats must be positive, got {repeats}")
    if number is None:
        number = 1
        while True:
            t0 = time.perf_counter_ns()
            for _ in range(number):
                fn()
            elapsed = time.perf_counter_ns() - t0
            if elapsed >= target_ns or number >= 1 << 16:
                break
            number *= 4
    samples = []
    for _ in range(repeats):
        t0 = time.perf_counter_ns()
        for _ in range(number):
            fn()
        samples.append((time.perf_counter_ns() - t0) / number / 1000.0)
    return Timing(min(samples), sum(samples) / len(samples), repeats)


def max_over_ranks(
    make_fn: Callable[[int], Callable[[], object]],
    p: int,
    *,
    repeats: int = 3,
    number: int | None = None,
) -> Timing:
    """The paper's reporting convention: run the per-rank computation for
    every rank ``m`` and report the maximum of the per-rank best times."""
    timings = [time_us(make_fn(m), repeats=repeats, number=number) for m in range(p)]
    worst = max(timings, key=lambda t: t.best_us)
    return worst
