"""Lower parsed mini-HPF programs to distributed descriptors + node plans.

The compilation pipeline a real HPF compiler would run, in miniature:

1. resolve declarations (processors, templates, arrays; one or two
   dimensions);
2. compose each array's per-dimension alignments with its template's
   distribution formats into a
   :class:`repro.distribution.DistributedArray` descriptor (partitioned
   template dimensions map onto the processor grid's axes in order;
   ``*`` dimensions stay collapsed);
3. lower each statement into an executable :class:`LoweredStatement`
   driving :mod:`repro.runtime` -- access plans for fills, 1-D/2-D
   communication schedules for copies and transposes, one schedule per
   term for scaled sums.  All schedules are computed at compile time
   (every parameter in this language is a compile-time constant -- the
   optimization the paper's Section 6.1 describes).

:class:`CompiledProgram.run` executes the statement list on a
:class:`repro.machine.VirtualMachine`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

import numpy as np

from ..distribution.align import Alignment
from ..distribution.array import AxisMap, DistributedArray
from ..distribution.dist import Block, Collapsed, Cyclic, CyclicK, ProcessorGrid
from ..distribution.section import RegularSection
from ..machine.vm import VirtualMachine
from ..runtime.commsets import CommSchedule
from ..runtime.plancache import cached_comm_schedule, cached_comm_schedule_2d
from ..runtime.exec import (
    collect,
    distribute,
    execute_combine,
    execute_copy,
    execute_copy_2d,
    execute_fill,
)
from .ast_nodes import (
    CombineAssign,
    CopyAssign,
    FillAssign,
    ForallAssign,
    Program,
    SectionRef,
    TransposeAssign,
    Triplet,
)
from .desugar import desugar_forall
from .parser import parse_program

__all__ = [
    "CompileError",
    "LoweredStatement",
    "CompiledProgram",
    "compile_program",
    "compile_source",
]


class CompileError(ValueError):
    """Semantic error during lowering (unknown names, bounds, shapes)."""


@dataclass
class LoweredStatement:
    """One executable statement with its precomputed runtime artifacts."""

    description: str
    run: Callable[[VirtualMachine], int]
    schedule: object | None = None


@dataclass
class CompiledProgram:
    """Executable result of compilation."""

    grid: ProcessorGrid
    arrays: dict[str, DistributedArray]
    statements: list[LoweredStatement]
    default_shape: str = "d"

    @property
    def nprocs(self) -> int:
        return self.grid.size

    def make_machine(self) -> VirtualMachine:
        """A fresh VM with every array allocated (zero-filled)."""
        vm = VirtualMachine(self.nprocs)
        for array in self.arrays.values():
            distribute(vm, array, np.zeros(array.shape))
        return vm

    def run(self, vm: VirtualMachine | None = None) -> VirtualMachine:
        """Execute all statements in order; returns the machine."""
        if vm is None:
            vm = self.make_machine()
        for stmt in self.statements:
            stmt.run(vm)
        return vm

    def image(self, vm: VirtualMachine, name: str) -> np.ndarray:
        """Collected host image of an array after a run."""
        if name not in self.arrays:
            raise CompileError(f"unknown array {name!r}")
        return collect(vm, self.arrays[name])


def _sections(ref: SectionRef) -> tuple[RegularSection, ...]:
    return tuple(
        RegularSection(t.lower, t.upper, t.stride) for t in ref.triplets
    )


def _format_sections(secs: tuple[RegularSection, ...]) -> str:
    return ", ".join(str(sec) for sec in secs)


def _check_bounds(
    ref: SectionRef, array: DistributedArray
) -> tuple[RegularSection, ...]:
    if ref.rank != array.rank:
        raise CompileError(
            f"section {ref.array} has {ref.rank} subscripts but the array "
            f"is rank-{array.rank}"
        )
    secs = _sections(ref)
    for sec, extent in zip(secs, array.shape):
        norm = sec.normalized()
        if not norm.is_empty and (norm.lower < 0 or norm.upper >= extent):
            raise CompileError(
                f"section {ref.array}({_format_sections(secs)}) exceeds "
                f"bounds [0, {extent})"
            )
    return secs


def _resolve_format(fmt: str, k: int | None):
    if fmt == "BLOCK":
        return Block()
    if fmt == "CYCLIC":
        return Cyclic()
    if fmt == "*":
        return Collapsed()
    return CyclicK(k)


def compile_program(program: Program, *, default_shape: str = "d") -> CompiledProgram:
    """Lower a parsed :class:`Program`; see module docstring."""
    if len(program.processors) != 1:
        raise CompileError(
            f"exactly one PROCESSORS declaration required, got {len(program.processors)}"
        )
    proc_decl = program.processors[0]
    grid = ProcessorGrid(proc_decl.name, proc_decl.shape)

    template_shapes = {t.name: t.shape for t in program.templates}
    if len(template_shapes) != len(program.templates):
        raise CompileError("duplicate TEMPLATE declarations")
    array_shapes = {a.name: a.shape for a in program.arrays}
    if len(array_shapes) != len(program.arrays):
        raise CompileError("duplicate array declarations")

    # ------------------------------------------------------------------
    # DISTRIBUTE resolution.
    # ------------------------------------------------------------------
    dist_by_template: dict[str, tuple] = {}
    for d in program.distributes:
        if d.template not in template_shapes:
            raise CompileError(f"DISTRIBUTE of undeclared template {d.template!r}")
        if d.processors != proc_decl.name:
            raise CompileError(f"DISTRIBUTE onto unknown processors {d.processors!r}")
        if d.template in dist_by_template:
            raise CompileError(f"template {d.template!r} distributed twice")
        shape = template_shapes[d.template]
        if len(d.formats) != len(shape):
            raise CompileError(
                f"DISTRIBUTE arity mismatch for {d.template!r}: template is "
                f"rank-{len(shape)}, got {len(d.formats)} formats"
            )
        dists = tuple(_resolve_format(fmt, k) for fmt, k in zip(d.formats, d.ks))
        partitioned = sum(1 for dist in dists if dist.partitions)
        if partitioned != grid.rank:
            raise CompileError(
                f"template {d.template!r} partitions {partitioned} dimensions "
                f"but the grid {proc_decl.name} is rank-{grid.rank}"
            )
        dist_by_template[d.template] = dists

    # ------------------------------------------------------------------
    # ALIGN resolution.
    # ------------------------------------------------------------------
    align_by_array: dict[str, tuple[str, tuple[Alignment, ...]]] = {}
    for al in program.aligns:
        if al.array not in array_shapes:
            raise CompileError(f"ALIGN of undeclared array {al.array!r}")
        if al.template not in template_shapes:
            raise CompileError(f"ALIGN with undeclared template {al.template!r}")
        if al.array in align_by_array:
            raise CompileError(f"array {al.array!r} aligned twice")
        if len(al.coefficients) != len(array_shapes[al.array]):
            raise CompileError(
                f"ALIGN arity mismatch: array {al.array!r} is "
                f"rank-{len(array_shapes[al.array])}, got "
                f"{len(al.coefficients)} expressions"
            )
        if len(al.coefficients) != len(template_shapes[al.template]):
            raise CompileError(
                f"ALIGN arity mismatch: template {al.template!r} is "
                f"rank-{len(template_shapes[al.template])}"
            )
        alignments = tuple(Alignment(a, b) for a, b in al.coefficients)
        align_by_array[al.array] = (al.template, alignments)

    # ------------------------------------------------------------------
    # Array descriptors.
    # ------------------------------------------------------------------
    arrays: dict[str, DistributedArray] = {}
    for name, shape in array_shapes.items():
        if name not in align_by_array:
            raise CompileError(f"array {name!r} has no ALIGN directive")
        template, alignments = align_by_array[name]
        if template not in dist_by_template:
            raise CompileError(
                f"array {name!r} aligned to undistributed template {template!r}"
            )
        dists = dist_by_template[template]
        tmpl_shape = template_shapes[template]
        axis_maps = []
        axis_counter = 0
        for dim, (extent, alignment, dist, tmpl_extent) in enumerate(
            zip(shape, alignments, dists, tmpl_shape)
        ):
            alloc = alignment.allocation_section(extent).normalized()
            if alloc.lower < 0 or alloc.upper >= tmpl_extent:
                raise CompileError(
                    f"array {name!r} dimension {dim} alignment maps outside "
                    f"template {template!r} (cells {alloc.lower}..{alloc.upper} "
                    f"vs size {tmpl_extent})"
                )
            if dist.partitions:
                axis_maps.append(
                    AxisMap(dist, alignment, grid_axis=axis_counter,
                            template_extent=tmpl_extent)
                )
                axis_counter += 1
            else:
                if not alignment.is_identity:
                    raise CompileError(
                        f"array {name!r} dimension {dim}: non-identity "
                        "alignment on a collapsed (*) dimension is not supported"
                    )
                axis_maps.append(AxisMap(dist, alignment))
        arrays[name] = DistributedArray(name, shape, grid, tuple(axis_maps))

    # ------------------------------------------------------------------
    # Statement lowering.
    # ------------------------------------------------------------------
    statements: list[LoweredStatement] = []

    def resolve(ref: SectionRef) -> DistributedArray:
        if ref.array not in arrays:
            raise CompileError(f"statement uses undeclared array {ref.array!r}")
        return arrays[ref.array]

    for stmt in program.statements:
        if isinstance(stmt, ForallAssign):
            lowered = desugar_forall(stmt)
            if lowered is None:
                # Empty iteration set: a verified no-op.
                statements.append(LoweredStatement(
                    f"FORALL ({stmt.var} = {stmt.triplet.lower}:"
                    f"{stmt.triplet.upper}:{stmt.triplet.stride}) [empty]",
                    lambda vm: 0,
                ))
                continue
            stmt = lowered
        if isinstance(stmt, FillAssign):
            array = resolve(stmt.target)
            secs = _check_bounds(stmt.target, array)
            value = stmt.value
            shape_choice = default_shape
            if array.rank == 1 and not array.axis_maps[0].alignment.is_identity:
                if shape_choice == "d":
                    shape_choice = "b"  # shape (d) needs identity alignment

            def run_fill(vm, array=array, secs=secs, value=value,
                         shape_choice=shape_choice):
                return execute_fill(vm, array, secs, value, shape=shape_choice)

            statements.append(LoweredStatement(
                f"{stmt.target.array}({_format_sections(secs)}) = {value}",
                run_fill,
            ))

        elif isinstance(stmt, CopyAssign):
            a = resolve(stmt.target)
            b = resolve(stmt.source)
            secs_a = _check_bounds(stmt.target, a)
            secs_b = _check_bounds(stmt.source, b)
            if a.rank != b.rank:
                raise CompileError(
                    f"rank mismatch: {a.name} is rank-{a.rank}, "
                    f"{b.name} is rank-{b.rank}"
                )
            lengths_a = tuple(len(sec) for sec in secs_a)
            lengths_b = tuple(len(sec) for sec in secs_b)
            if lengths_a != lengths_b:
                raise CompileError(
                    f"non-conformable assignment: {lengths_a} vs {lengths_b}"
                )
            if a.rank == 1:
                schedule = cached_comm_schedule(a, secs_a[0], b, secs_b[0])

                def run_copy(vm, a=a, secs_a=secs_a, b=b, secs_b=secs_b,
                             schedule=schedule):
                    execute_copy(vm, a, secs_a[0], b, secs_b[0], schedule=schedule)
                    return schedule.total_elements

            elif a.rank == 2:
                schedule = cached_comm_schedule_2d(a, secs_a, b, secs_b)

                def run_copy(vm, a=a, secs_a=secs_a, b=b, secs_b=secs_b,
                             schedule=schedule):
                    execute_copy_2d(vm, a, secs_a, b, secs_b, schedule=schedule)
                    return schedule.total_elements

            else:  # pragma: no cover - parser limits ranks via declarations
                raise CompileError("copies support rank-1 and rank-2 arrays only")
            statements.append(LoweredStatement(
                f"{stmt.target.array}({_format_sections(secs_a)}) = "
                f"{stmt.source.array}({_format_sections(secs_b)})",
                run_copy,
                schedule,
            ))

        elif isinstance(stmt, TransposeAssign):
            a = resolve(stmt.target)
            b = resolve(stmt.source)
            if a.rank != 2 or b.rank != 2:
                raise CompileError("TRANSPOSE requires rank-2 arrays")
            secs_a = _check_bounds(stmt.target, a)
            secs_b = _check_bounds(stmt.source, b)
            lengths_a = tuple(len(sec) for sec in secs_a)
            lengths_b = tuple(len(sec) for sec in secs_b)
            if lengths_a != (lengths_b[1], lengths_b[0]):
                raise CompileError(
                    f"non-conformable TRANSPOSE: {lengths_a} vs "
                    f"{lengths_b} transposed"
                )
            schedule = cached_comm_schedule_2d(
                a, secs_a, b, secs_b, rhs_dims=(1, 0)
            )

            def run_transpose(vm, a=a, secs_a=secs_a, b=b, secs_b=secs_b,
                              schedule=schedule):
                execute_copy_2d(vm, a, secs_a, b, secs_b,
                                schedule=schedule, rhs_dims=(1, 0))
                return schedule.total_elements

            statements.append(LoweredStatement(
                f"{stmt.target.array}({_format_sections(secs_a)}) = "
                f"TRANSPOSE({stmt.source.array}({_format_sections(secs_b)}))",
                run_transpose,
                schedule,
            ))

        elif isinstance(stmt, CombineAssign):
            a = resolve(stmt.target)
            if a.rank != 1:
                raise CompileError("scaled sums support rank-1 arrays only")
            secs_a = _check_bounds(stmt.target, a)
            sec_a = secs_a[0]
            lowered_terms = []
            for term in stmt.terms:
                src = resolve(term.section)
                if src.rank != 1:
                    raise CompileError("scaled sums support rank-1 arrays only")
                sec_t = _check_bounds(term.section, src)[0]
                if len(sec_t) != len(sec_a):
                    raise CompileError(
                        f"non-conformable assignment: |{sec_a}| = {len(sec_a)} "
                        f"vs |{sec_t}| = {len(sec_t)}"
                    )
                lowered_terms.append((term.coef, src, sec_t))
            term_schedules = [
                cached_comm_schedule(a, sec_a, src, sec_t)
                for _, src, sec_t in lowered_terms
            ]

            def run_combine(vm, a=a, sec_a=sec_a, lowered_terms=lowered_terms,
                            term_schedules=term_schedules):
                execute_combine(vm, a, sec_a, lowered_terms,
                                schedules=term_schedules)
                return sum(sched.total_elements for sched in term_schedules)

            rhs = " + ".join(
                f"{term.coef}*{term.section.array}"
                f"({_format_sections(_sections(term.section))})"
                for term in stmt.terms
            )
            statements.append(LoweredStatement(
                f"{stmt.target.array}({sec_a}) = {rhs}",
                run_combine,
                term_schedules[0] if term_schedules else None,
            ))

        else:  # pragma: no cover - parser only produces the four kinds
            raise CompileError(f"unsupported statement {stmt!r}")

    return CompiledProgram(grid, arrays, statements, default_shape)


def compile_source(source: str, *, default_shape: str = "d") -> CompiledProgram:
    """Parse + compile in one step."""
    return compile_program(parse_program(source), default_shape=default_shape)
