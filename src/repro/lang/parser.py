"""Line-oriented parser for the mini-HPF language.

Grammar (one construct per line; ``!`` starts a comment; case-insensitive
keywords, case-sensitive identifiers)::

    PROCESSORS P(4)                        ! or P(2, 2)
    TEMPLATE   T(320)                      ! or T(64, 64)
    REAL       A(320)                      ! or A(64, 64)
    ALIGN      A(i) WITH T(2*i+1)          ! per-dim affine expressions
    ALIGN      M(i, j) WITH T(i, 3*j)
    DISTRIBUTE T(CYCLIC(8)) ONTO P         ! BLOCK, CYCLIC, CYCLIC(k), *
    DISTRIBUTE T(CYCLIC(2), BLOCK) ONTO P

    A(4:319:9)          = 100.0            ! fill
    A(0:312:8)          = B(3:237:6)       ! copy
    A(0:9)              = 0.5*B(0:9) + 0.5*C(1:10)   ! scaled sum (rank-1)
    M(0:63, 0:63)       = N(0:63, 0:63)    ! 2-D copy
    M(0:63, 0:63)       = TRANSPOSE(N(0:63, 0:63))   ! distributed transpose
    FORALL (i = 1:62) A(i) = 0.5*A(i-1) + 0.5*A(i+1) ! affine-indexed loop

Errors carry line numbers; :class:`ParseError` is the single exception
type raised.
"""

from __future__ import annotations

import re

from .ast_nodes import (
    AffineRef,
    AlignDirective,
    ArrayDecl,
    CombineAssign,
    CopyAssign,
    DistributeDirective,
    FillAssign,
    ForallAssign,
    ForallTerm,
    ProcessorsDecl,
    Program,
    SectionRef,
    TemplateDecl,
    Term,
    TransposeAssign,
    Triplet,
)

__all__ = ["ParseError", "parse_program", "parse_triplet", "parse_affine"]

_IDENT = r"[A-Za-z_][A-Za-z_0-9]*"
_INT = r"[+-]?\d+"
_SHAPE = rf"{_INT}(?:\s*,\s*{_INT})*"

_PROCESSORS = re.compile(rf"^PROCESSORS\s+({_IDENT})\s*\(\s*({_SHAPE})\s*\)$", re.I)
_TEMPLATE = re.compile(rf"^TEMPLATE\s+({_IDENT})\s*\(\s*({_SHAPE})\s*\)$", re.I)
_REAL = re.compile(rf"^REAL\s+({_IDENT})\s*\(\s*({_SHAPE})\s*\)$", re.I)
_ALIGN = re.compile(
    rf"^ALIGN\s+({_IDENT})\s*\(\s*({_IDENT}(?:\s*,\s*{_IDENT})*)\s*\)"
    rf"\s+WITH\s+({_IDENT})\s*\(\s*(.+?)\s*\)$",
    re.I,
)
_DISTRIBUTE = re.compile(
    rf"^DISTRIBUTE\s+({_IDENT})\s*\(\s*(.+?)\s*\)\s+ONTO\s+({_IDENT})$", re.I
)
_CYCLIC_K = re.compile(rf"^CYCLIC\s*\(\s*({_INT})\s*\)$", re.I)
_TRIPLET = rf"{_INT}\s*:\s*{_INT}(?:\s*:\s*{_INT})?"
_SECTION = re.compile(
    rf"^({_IDENT})\s*\(\s*({_TRIPLET}(?:\s*,\s*{_TRIPLET})*)\s*\)$"
)
_TRANSPOSE = re.compile(r"^TRANSPOSE\s*\(\s*(.+?)\s*\)$", re.I)
_FORALL = re.compile(
    rf"^FORALL\s*\(\s*({_IDENT})\s*=\s*({_TRIPLET})\s*\)\s+(.+)$", re.I
)
_AFFINE_REF = re.compile(rf"^({_IDENT})\s*\(\s*([^():]+?)\s*\)$")
_FLOAT = re.compile(r"^[+-]?(\d+(\.\d*)?|\.\d+)([eE][+-]?\d+)?$")


class ParseError(ValueError):
    """Syntax error with source line context."""

    def __init__(self, lineno: int, line: str, why: str) -> None:
        super().__init__(f"line {lineno}: {why}: {line!r}")
        self.lineno = lineno
        self.line = line
        self.why = why


def parse_triplet(text: str, lineno: int = 0) -> Triplet:
    """Parse ``l:u`` or ``l:u:s`` into a :class:`Triplet`."""
    parts = [part.strip() for part in text.split(":")]
    if len(parts) not in (2, 3) or not all(re.fullmatch(_INT, p) for p in parts):
        raise ParseError(lineno, text, "malformed triplet (want l:u or l:u:s)")
    l, u = int(parts[0]), int(parts[1])
    s = int(parts[2]) if len(parts) == 3 else 1
    if s == 0:
        raise ParseError(lineno, text, "triplet stride must be nonzero")
    return Triplet(l, u, s)


def parse_affine(expr: str, var: str, lineno: int = 0) -> tuple[int, int]:
    """Parse an affine alignment expression in ``var`` -> ``(a, b)``.

    Accepts ``i``, ``-i``, ``3*i``, ``i+4``, ``2*i-5``, ``-i+9``; a bare
    constant is rejected (alignments must mention the index).
    """
    text = expr.replace(" ", "")
    pattern = re.compile(
        rf"^(?P<coef>[+-]?\d*\*?)?{re.escape(var)}(?P<off>[+-]\d+)?$"
    )
    match = pattern.fullmatch(text)
    if not match:
        raise ParseError(lineno, expr, f"malformed affine expression in {var!r}")
    coef_text = (match.group("coef") or "").rstrip("*")
    if coef_text in ("", "+"):
        a = 1
    elif coef_text == "-":
        a = -1
    else:
        a = int(coef_text)
    if a == 0:
        raise ParseError(lineno, expr, "alignment coefficient must be nonzero")
    b = int(match.group("off") or 0)
    return a, b


def _split_top(text: str, sep: str) -> list[str]:
    """Split on ``sep`` characters not nested inside parentheses."""
    parts, depth, current = [], 0, []
    for ch in text:
        if ch == "(":
            depth += 1
        elif ch == ")":
            depth -= 1
        if ch == sep and depth == 0:
            parts.append("".join(current).strip())
            current = []
        else:
            current.append(ch)
    parts.append("".join(current).strip())
    return parts


def _split_top_commas(text: str) -> list[str]:
    """Split on commas not nested inside parentheses."""
    return _split_top(text, ",")


def _parse_shape(text: str) -> tuple[int, ...]:
    return tuple(int(part.strip()) for part in text.split(","))


def _parse_section(text: str, lineno: int) -> SectionRef | None:
    match = _SECTION.fullmatch(text.strip())
    if not match:
        return None
    name, body = match.groups()
    triplets = tuple(
        parse_triplet(part, lineno) for part in _split_top_commas(body)
    )
    return SectionRef(name, triplets)


def _parse_rhs(target: SectionRef, rhs_text: str, raw: str, lineno: int):
    """Parse an assignment right-hand side.

    Grammar: ``scalar`` | ``section`` | ``TRANSPOSE(section)`` |
    ``term (+ term)*`` with ``term = [scalar *] section`` (rank-1).
    """
    if _FLOAT.fullmatch(rhs_text):
        return FillAssign(target, float(rhs_text))
    if match := _TRANSPOSE.fullmatch(rhs_text):
        inner = _parse_section(match.group(1), lineno)
        if inner is None:
            raise ParseError(lineno, raw, "TRANSPOSE argument must be a section")
        return TransposeAssign(target, inner)
    single = _parse_section(rhs_text, lineno)
    if single is not None:
        return CopyAssign(target, single)

    terms: list[Term] = []
    for part in _split_top(rhs_text, "+"):
        part = part.strip()
        if not part:
            raise ParseError(lineno, raw, "empty term in right-hand side")
        coef = 1.0
        body = part
        if "*" in part:
            coef_text, body = (piece.strip() for piece in part.split("*", 1))
            if not _FLOAT.fullmatch(coef_text):
                raise ParseError(
                    lineno, raw, f"malformed coefficient {coef_text!r}"
                )
            coef = float(coef_text)
        section = _parse_section(body, lineno)
        if section is None:
            raise ParseError(
                lineno, raw,
                "right-hand side must be a scalar, a section, TRANSPOSE(...), "
                "or a sum of scaled sections",
            )
        terms.append(Term(coef, section))
    return CombineAssign(target, tuple(terms))


def _parse_distribute_formats(
    body: str, raw: str, lineno: int
) -> tuple[tuple[str, ...], tuple[int | None, ...]]:
    formats: list[str] = []
    ks: list[int | None] = []
    for part in _split_top_commas(body):
        upper = part.upper().replace(" ", "")
        if kmatch := _CYCLIC_K.fullmatch(part):
            k = int(kmatch.group(1))
            if k <= 0:
                raise ParseError(lineno, raw, "cyclic block size must be positive")
            formats.append(f"CYCLIC({k})")
            ks.append(k)
        elif upper == "BLOCK":
            formats.append("BLOCK")
            ks.append(None)
        elif upper == "CYCLIC":
            formats.append("CYCLIC")
            ks.append(None)
        elif upper == "*":
            formats.append("*")
            ks.append(None)
        else:
            raise ParseError(lineno, raw, f"unknown distribution format {part!r}")
    return tuple(formats), tuple(ks)


def _parse_affine_ref(text: str, var: str, lineno: int, raw: str) -> AffineRef | None:
    """Parse ``A(2*i+1)`` into an :class:`AffineRef` (``None`` if the text
    is not an indexed reference)."""
    match = _AFFINE_REF.fullmatch(text.strip())
    if not match:
        return None
    name, expr = match.groups()
    a, b = parse_affine(expr, var, lineno)
    return AffineRef(name, a, b)


def _parse_forall(match: re.Match, raw: str, lineno: int) -> ForallAssign:
    """Parse a FORALL statement: ``FORALL (i = l:u:s) A(f(i)) = rhs``."""
    var, triplet_text, body = match.groups()
    triplet = parse_triplet(triplet_text, lineno)
    if "=" not in body:
        raise ParseError(lineno, raw, "FORALL body must be an assignment")
    lhs_text, rhs_text = (part.strip() for part in body.split("=", 1))
    target = _parse_affine_ref(lhs_text, var, lineno, raw)
    if target is None:
        raise ParseError(
            lineno, raw, f"FORALL left-hand side must be A(affine({var}))"
        )
    if _FLOAT.fullmatch(rhs_text):
        return ForallAssign(var, triplet, target, float(rhs_text), ())
    terms: list[ForallTerm] = []
    for part in _split_top(rhs_text, "+"):
        part = part.strip()
        if not part:
            raise ParseError(lineno, raw, "empty term in FORALL right-hand side")
        coef = 1.0
        body_text = part
        # A coefficient exists when the part is "<float> * rest".
        if "*" in part:
            head, tail = (piece.strip() for piece in part.split("*", 1))
            if _FLOAT.fullmatch(head):
                coef = float(head)
                body_text = tail
        ref = _parse_affine_ref(body_text, var, lineno, raw)
        if ref is None:
            raise ParseError(
                lineno, raw,
                f"FORALL terms must be [scalar *] B(affine({var}))",
            )
        terms.append(ForallTerm(coef, ref))
    return ForallAssign(var, triplet, target, None, tuple(terms))


def parse_program(source: str) -> Program:
    """Parse a full program; declarations may appear in any order but
    must precede their first use."""
    processors: list[ProcessorsDecl] = []
    templates: list[TemplateDecl] = []
    arrays: list[ArrayDecl] = []
    aligns: list[AlignDirective] = []
    distributes: list[DistributeDirective] = []
    statements: list = []

    for lineno, raw in enumerate(source.splitlines(), start=1):
        line = raw.split("!", 1)[0].strip()
        if not line:
            continue

        if match := _PROCESSORS.fullmatch(line):
            name, shape = match.group(1), _parse_shape(match.group(2))
            if any(extent <= 0 for extent in shape):
                raise ParseError(lineno, raw, "processor counts must be positive")
            processors.append(ProcessorsDecl(name, shape))
            continue
        if match := _TEMPLATE.fullmatch(line):
            name, shape = match.group(1), _parse_shape(match.group(2))
            if any(extent <= 0 for extent in shape):
                raise ParseError(lineno, raw, "template sizes must be positive")
            templates.append(TemplateDecl(name, shape))
            continue
        if match := _REAL.fullmatch(line):
            name, shape = match.group(1), _parse_shape(match.group(2))
            if any(extent <= 0 for extent in shape):
                raise ParseError(lineno, raw, "array sizes must be positive")
            arrays.append(ArrayDecl(name, shape))
            continue
        if match := _ALIGN.fullmatch(line):
            array, vars_text, template, exprs_text = match.groups()
            variables = [v.strip() for v in vars_text.split(",")]
            exprs = _split_top_commas(exprs_text)
            if len(exprs) != len(variables):
                raise ParseError(
                    lineno, raw,
                    f"ALIGN arity mismatch: {len(variables)} index variables, "
                    f"{len(exprs)} expressions",
                )
            if len(set(variables)) != len(variables):
                raise ParseError(lineno, raw, "duplicate index variables in ALIGN")
            coefficients = tuple(
                parse_affine(expr, var, lineno)
                for var, expr in zip(variables, exprs)
            )
            aligns.append(AlignDirective(array, template, coefficients))
            continue
        if match := _DISTRIBUTE.fullmatch(line):
            template, body, procs = match.groups()
            formats, ks = _parse_distribute_formats(body, raw, lineno)
            distributes.append(DistributeDirective(template, formats, ks, procs))
            continue

        if match := _FORALL.fullmatch(line):
            statements.append(_parse_forall(match, raw, lineno))
            continue

        # Assignment statements.
        if "=" in line:
            lhs_text, rhs_text = (part.strip() for part in line.split("=", 1))
            target = _parse_section(lhs_text, lineno)
            if target is None:
                raise ParseError(
                    lineno, raw, "left-hand side must be a section A(l:u:s)"
                )
            statements.append(_parse_rhs(target, rhs_text, raw, lineno))
            continue

        raise ParseError(lineno, raw, "unrecognized construct")

    return Program(
        tuple(processors),
        tuple(templates),
        tuple(arrays),
        tuple(aligns),
        tuple(distributes),
        tuple(statements),
    )
