"""FORALL desugaring: affine-indexed loops become section statements.

``FORALL (i = l:u:s) A(a*i+b) = ...`` touches, for each reference, the
affine image of the iteration triplet -- itself a triplet
``a*l+b : a*last+b : a*s`` (``last`` is the final iterate, so the image
is exact even when ``u`` is not hit).  HPF FORALL semantics (full RHS
evaluation before any store) coincide with array-assignment semantics,
so the desugared statement is equivalent; both the compiler and the
reference interpreter lower through this module.
"""

from __future__ import annotations

from .ast_nodes import (
    AffineRef,
    CombineAssign,
    FillAssign,
    ForallAssign,
    SectionRef,
    Term,
    Triplet,
)

__all__ = ["desugar_forall", "iteration_count"]


def iteration_count(triplet: Triplet) -> int:
    """Number of iterates of ``l:u:s`` (Fortran triplet semantics)."""
    l, u, s = triplet.lower, triplet.upper, triplet.stride
    if s > 0:
        return 0 if u < l else (u - l) // s + 1
    return 0 if u > l else (l - u) // (-s) + 1


def _image(ref: AffineRef, triplet: Triplet) -> SectionRef:
    count = iteration_count(triplet)
    last = triplet.lower + (count - 1) * triplet.stride
    return SectionRef(
        ref.array,
        (
            Triplet(
                ref.a * triplet.lower + ref.b,
                ref.a * last + ref.b,
                ref.a * triplet.stride,
            ),
        ),
    )


def desugar_forall(stmt: ForallAssign) -> FillAssign | CombineAssign | None:
    """Equivalent section statement, or ``None`` for empty iteration sets."""
    if iteration_count(stmt.triplet) == 0:
        return None
    target = _image(stmt.target, stmt.triplet)
    if stmt.value is not None:
        return FillAssign(target, stmt.value)
    terms = tuple(
        Term(term.coef, _image(term.ref, stmt.triplet)) for term in stmt.terms
    )
    return CombineAssign(target, terms)
