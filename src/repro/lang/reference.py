"""Reference interpreter: sequential NumPy semantics for mini-HPF.

Executes a parsed :class:`Program` on plain host arrays, ignoring all
mapping directives -- the *specification* the distributed execution must
match.  The differential test suite compiles random programs, runs both
this interpreter and the virtual machine, and compares images; any
divergence is a bug in the mapping/runtime stack, never in the program.
"""

from __future__ import annotations

import numpy as np

from .ast_nodes import (
    CombineAssign,
    CopyAssign,
    FillAssign,
    ForallAssign,
    Program,
    SectionRef,
    TransposeAssign,
)
from .desugar import desugar_forall

__all__ = ["ReferenceInterpreter", "interpret"]


def _indexer(ref: SectionRef) -> tuple[slice, ...]:
    """NumPy basic-slicing equivalent of a section (positive strides).

    Triplet upper bounds are inclusive; negative strides traverse
    downward, which NumPy expresses with a downward slice whose stop may
    need to be ``None`` when it would cross -1.
    """
    out = []
    for t in ref.triplets:
        if t.stride > 0:
            out.append(slice(t.lower, t.upper + 1, t.stride))
        else:
            stop = t.upper - 1
            out.append(slice(t.lower, None if stop < 0 else stop, t.stride))
    return tuple(out)


class ReferenceInterpreter:
    """Holds the host arrays and executes statements in order."""

    def __init__(self, program: Program) -> None:
        self.program = program
        self.arrays: dict[str, np.ndarray] = {
            decl.name: np.zeros(decl.shape) for decl in program.arrays
        }

    def set_array(self, name: str, values: np.ndarray) -> None:
        if name not in self.arrays:
            raise KeyError(f"unknown array {name!r}")
        values = np.asarray(values, dtype=float)
        if values.shape != self.arrays[name].shape:
            raise ValueError(
                f"shape mismatch for {name!r}: {values.shape} vs "
                f"{self.arrays[name].shape}"
            )
        self.arrays[name] = values.copy()

    def run(self) -> dict[str, np.ndarray]:
        for stmt in self.program.statements:
            self._execute(stmt)
        return self.arrays

    def _execute(self, stmt) -> None:
        # Fortran array-assignment semantics: the whole RHS is evaluated
        # before any element is stored.  NumPy does NOT guarantee this
        # for overlapping strided self-assignment (``a[0:5:2] = a[0:3]``
        # writes through the overlap), so RHS views are copied explicitly.
        if isinstance(stmt, ForallAssign):
            lowered = desugar_forall(stmt)
            if lowered is None:
                return
            stmt = lowered
        if isinstance(stmt, FillAssign):
            self.arrays[stmt.target.array][_indexer(stmt.target)] = stmt.value
        elif isinstance(stmt, CopyAssign):
            value = self.arrays[stmt.source.array][_indexer(stmt.source)].copy()
            self.arrays[stmt.target.array][_indexer(stmt.target)] = value
        elif isinstance(stmt, TransposeAssign):
            value = self.arrays[stmt.source.array][_indexer(stmt.source)].copy()
            self.arrays[stmt.target.array][_indexer(stmt.target)] = value.T
        elif isinstance(stmt, CombineAssign):
            total = None
            for term in stmt.terms:
                value = term.coef * self.arrays[term.section.array][
                    _indexer(term.section)
                ]
                total = value if total is None else total + value
            self.arrays[stmt.target.array][_indexer(stmt.target)] = total
        else:  # pragma: no cover - parser produces only these kinds
            raise TypeError(f"unsupported statement {stmt!r}")


def interpret(
    program: Program, inputs: dict[str, np.ndarray] | None = None
) -> dict[str, np.ndarray]:
    """One-shot convenience: initialize, run, return final host images."""
    interp = ReferenceInterpreter(program)
    for name, values in (inputs or {}).items():
        interp.set_array(name, values)
    return interp.run()
