"""AST for the mini-HPF data-parallel language.

The language covers the subset of HPF the paper's problem lives in:
declarations of processor arrangements, templates, and real arrays
(one- or two-dimensional); ``ALIGN``/``DISTRIBUTE`` directives with
per-dimension affine alignments and block-cyclic formats; and
array-assignment statements -- scalar fills, section copies, scaled
sums, and the ``TRANSPOSE`` intrinsic.
"""

from __future__ import annotations

from dataclasses import dataclass
from math import prod

__all__ = [
    "Node",
    "ProcessorsDecl",
    "TemplateDecl",
    "ArrayDecl",
    "AlignDirective",
    "DistributeDirective",
    "Triplet",
    "SectionRef",
    "FillAssign",
    "CopyAssign",
    "Term",
    "CombineAssign",
    "TransposeAssign",
    "AffineRef",
    "ForallTerm",
    "ForallAssign",
    "Program",
]


class Node:
    """Base class for AST nodes (structural; no behaviour)."""


@dataclass(frozen=True, slots=True)
class ProcessorsDecl(Node):
    """``PROCESSORS P(4)`` or ``PROCESSORS P(2, 2)``."""

    name: str
    shape: tuple[int, ...]

    @property
    def size(self) -> int:
        return prod(self.shape)


@dataclass(frozen=True, slots=True)
class TemplateDecl(Node):
    """``TEMPLATE T(320)`` or ``TEMPLATE T(64, 64)``."""

    name: str
    shape: tuple[int, ...]

    @property
    def size(self) -> int:
        return prod(self.shape)


@dataclass(frozen=True, slots=True)
class ArrayDecl(Node):
    """``REAL A(320)`` or ``REAL A(64, 64)``."""

    name: str
    shape: tuple[int, ...]

    @property
    def size(self) -> int:
        return prod(self.shape)


@dataclass(frozen=True, slots=True)
class AlignDirective(Node):
    """``ALIGN A(i) WITH T(2*i+1)`` / ``ALIGN A(i, j) WITH T(i, 3*j)``.

    ``coefficients[d]`` is the affine pair ``(a, b)`` for dimension
    ``d``; dimension ``d`` of the array aligns to dimension ``d`` of the
    template (no dimension permutation in directives -- use the
    TRANSPOSE intrinsic in statements instead).
    """

    array: str
    template: str
    coefficients: tuple[tuple[int, int], ...]

    @property
    def a(self) -> int:
        """First-dimension coefficient (1-D convenience)."""
        return self.coefficients[0][0]

    @property
    def b(self) -> int:
        """First-dimension offset (1-D convenience)."""
        return self.coefficients[0][1]


@dataclass(frozen=True, slots=True)
class DistributeDirective(Node):
    """``DISTRIBUTE T(CYCLIC(8)) ONTO P`` /
    ``DISTRIBUTE T(CYCLIC(2), BLOCK) ONTO P``.

    ``formats[d]`` is ``"BLOCK"``, ``"CYCLIC"``, ``"CYCLIC(k)"``, or
    ``"*"`` (collapsed); partitioned dimensions map onto the processor
    grid's axes in order.
    """

    template: str
    formats: tuple[str, ...]
    ks: tuple[int | None, ...]
    processors: str

    @property
    def format(self) -> str:
        """First-dimension format (1-D convenience)."""
        return self.formats[0]

    @property
    def k(self) -> int | None:
        return self.ks[0]


@dataclass(frozen=True, slots=True)
class Triplet(Node):
    """``l:u:s`` (stride defaults to 1)."""

    lower: int
    upper: int
    stride: int = 1


@dataclass(frozen=True, slots=True)
class SectionRef(Node):
    """``A(l:u:s)`` or ``A(l0:u0:s0, l1:u1:s1)``."""

    array: str
    triplets: tuple[Triplet, ...]

    @property
    def triplet(self) -> Triplet:
        """First-dimension triplet (1-D convenience)."""
        return self.triplets[0]

    @property
    def rank(self) -> int:
        return len(self.triplets)


@dataclass(frozen=True, slots=True)
class FillAssign(Node):
    """``A(sections) = 100.0``"""

    target: SectionRef
    value: float


@dataclass(frozen=True, slots=True)
class CopyAssign(Node):
    """``A(sections) = B(sections)`` (elementwise, matching ranks)."""

    target: SectionRef
    source: SectionRef


@dataclass(frozen=True, slots=True)
class Term(Node):
    """One scaled section term ``coef * B(l:u:s)`` of a combine RHS."""

    coef: float
    section: SectionRef


@dataclass(frozen=True, slots=True)
class CombineAssign(Node):
    """``A(sec) = c1*B(sec1) + c2*C(sec2) + ...`` (rank-1 only)."""

    target: SectionRef
    terms: tuple[Term, ...]


@dataclass(frozen=True, slots=True)
class TransposeAssign(Node):
    """``A(sec0, sec1) = TRANSPOSE(B(sec0', sec1'))`` (rank-2 only)."""

    target: SectionRef
    source: SectionRef


@dataclass(frozen=True, slots=True)
class AffineRef(Node):
    """An indexed reference ``A(a*i + b)`` inside a FORALL body."""

    array: str
    a: int
    b: int


@dataclass(frozen=True, slots=True)
class ForallTerm(Node):
    """``coef * B(a*i+b)`` inside a FORALL right-hand side."""

    coef: float
    ref: AffineRef


@dataclass(frozen=True, slots=True)
class ForallAssign(Node):
    """``FORALL (i = l:u:s) A(f(i)) = expr`` with affine subscripts.

    ``value`` is set for scalar RHS; otherwise ``terms`` holds the
    scaled references.  HPF FORALL semantics: the whole RHS is evaluated
    for every iteration before any store (which the runtime's staged
    combines provide).  Desugars to a section statement because an
    affine image of a triplet is a triplet.
    """

    var: str
    triplet: Triplet
    target: AffineRef
    value: float | None
    terms: tuple[ForallTerm, ...]


@dataclass(frozen=True, slots=True)
class Program(Node):
    """A parsed program: declarations, directives, then statements."""

    processors: tuple[ProcessorsDecl, ...]
    templates: tuple[TemplateDecl, ...]
    arrays: tuple[ArrayDecl, ...]
    aligns: tuple[AlignDirective, ...]
    distributes: tuple[DistributeDirective, ...]
    statements: tuple[Node, ...]
