"""Mini-HPF front end: parser + compiler onto the runtime."""

from .ast_nodes import (
    AlignDirective,
    ArrayDecl,
    CombineAssign,
    CopyAssign,
    DistributeDirective,
    FillAssign,
    ProcessorsDecl,
    Program,
    SectionRef,
    TemplateDecl,
    Term,
    TransposeAssign,
    Triplet,
)
from .compiler import (
    CompileError,
    CompiledProgram,
    LoweredStatement,
    compile_program,
    compile_source,
)
from .parser import ParseError, parse_affine, parse_program, parse_triplet

__all__ = [
    "parse_program",
    "parse_triplet",
    "parse_affine",
    "ParseError",
    "compile_program",
    "compile_source",
    "CompileError",
    "CompiledProgram",
    "LoweredStatement",
    "Program",
    "ProcessorsDecl",
    "TemplateDecl",
    "ArrayDecl",
    "AlignDirective",
    "DistributeDirective",
    "Triplet",
    "SectionRef",
    "FillAssign",
    "CopyAssign",
    "Term",
    "CombineAssign",
    "TransposeAssign",
]
