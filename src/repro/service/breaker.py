"""A per-shard circuit breaker for the planning service's compute path.

Classic three-state breaker (closed -> open -> half-open) on the
monotonic clock:

* **closed** -- requests flow; ``record_failure`` counts *consecutive*
  failures and trips the breaker at ``failure_threshold``.
* **open** -- :meth:`allow` refuses for ``reset_after_s`` seconds; the
  server answers from the degradation ladder (stale cache, reference
  path) instead of hammering a failing compute path.
* **half-open** -- after the cooldown one probe request is admitted; a
  success closes the breaker, a failure re-opens it for another
  cooldown.

The server keeps one breaker per cache shard, keyed the same way as the
result cache, so a poisoned key family (e.g. a compute bug tickled by
one parameter region, or injected chaos faults concentrated on one
shard) degrades only its shard while the rest of the key space stays on
the fast path.

Single-threaded by design: the server calls it only from the event
loop.  The clock is injectable so tests drive the state machine without
sleeping.
"""

from __future__ import annotations

import time
from typing import Callable

__all__ = ["CircuitBreaker"]


class CircuitBreaker:
    CLOSED = "closed"
    OPEN = "open"
    HALF_OPEN = "half-open"

    def __init__(
        self,
        failure_threshold: int = 5,
        reset_after_s: float = 1.0,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        if failure_threshold < 1:
            raise ValueError(
                f"failure_threshold must be >= 1, got {failure_threshold}"
            )
        if reset_after_s <= 0:
            raise ValueError(f"reset_after_s must be positive, got {reset_after_s}")
        self.failure_threshold = failure_threshold
        self.reset_after_s = reset_after_s
        self._clock = clock
        self._state = self.CLOSED
        self._consecutive_failures = 0
        self._opened_at = 0.0
        self._probing = False
        self.trips = 0  # lifetime count of closed/half-open -> open

    @property
    def state(self) -> str:
        """Current state, advancing open -> half-open on cooldown expiry."""
        if self._state == self.OPEN and (
            self._clock() - self._opened_at >= self.reset_after_s
        ):
            self._state = self.HALF_OPEN
            self._probing = False
        return self._state

    def allow(self) -> bool:
        """May a request take the normal compute path right now?

        In half-open, exactly one probe is admitted per cooldown; its
        outcome (reported via ``record_success``/``record_failure``)
        decides the next state.
        """
        state = self.state
        if state == self.CLOSED:
            return True
        if state == self.HALF_OPEN and not self._probing:
            self._probing = True
            return True
        return False

    def record_success(self) -> None:
        self._consecutive_failures = 0
        self._probing = False
        self._state = self.CLOSED

    def record_failure(self) -> None:
        if self.state == self.HALF_OPEN:
            self._trip()
            return
        self._consecutive_failures += 1
        if self._consecutive_failures >= self.failure_threshold:
            self._trip()

    def _trip(self) -> None:
        self._state = self.OPEN
        self._opened_at = self._clock()
        self._consecutive_failures = 0
        self._probing = False
        self.trips += 1

    def snapshot(self) -> dict:
        return {
            "state": self.state,
            "consecutive_failures": self._consecutive_failures,
            "trips": self.trips,
        }
