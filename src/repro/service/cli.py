"""CLI entry points: ``python -m repro serve`` and ``repro plan-client``.

``serve`` runs one :class:`~repro.service.server.PlanServer` in the
foreground until SIGINT/SIGTERM, then shuts down gracefully (final
snapshot included).  ``plan-client`` sends queries from the shell --
smoke tests, scripting, and the soak driver all go through it.

Examples::

    python -m repro serve --unix /tmp/plan.sock --snapshot /tmp/plan.snap
    python -m repro serve --host 127.0.0.1 --port 7421 --max-inflight 32

    python -m repro plan-client --unix /tmp/plan.sock ping
    python -m repro plan-client --unix /tmp/plan.sock plan p=4 k=8 l=4 s=9 m=1
    python -m repro plan-client --unix /tmp/plan.sock schedule \\
        --json '{"n": 64, "p": 4, "lhs": {"k": 8, "lower": 0, "upper": 63,
                 "stride": 1}, "rhs": {"k": 4, "lower": 0, "upper": 63,
                 "stride": 1}}'

See docs/SERVICE.md for the protocol and the full knob reference.
"""

from __future__ import annotations

import argparse
import asyncio
import json
import os
import signal
import sys

__all__ = ["serve_main", "client_main"]


def _add_address_args(parser: argparse.ArgumentParser) -> None:
    group = parser.add_mutually_exclusive_group()
    group.add_argument("--unix", metavar="PATH", help="unix-domain socket path")
    group.add_argument("--host", help="TCP host to bind/connect")
    parser.add_argument(
        "--port", type=int, default=7421, help="TCP port (with --host; default 7421)"
    )


def _resolve_address(args) -> str | tuple:
    if args.unix:
        return args.unix
    if args.host:
        return (args.host, args.port)
    return "/tmp/repro-plan.sock"


# ---------------------------------------------------------------------------
# serve
# ---------------------------------------------------------------------------


def _serve_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro serve",
        description="Run the crash-safe layout-planning service.",
    )
    _add_address_args(parser)
    parser.add_argument(
        "--deadline-ms", type=int, default=2000,
        help="default per-request deadline when the client sends none",
    )
    parser.add_argument(
        "--max-deadline-ms", type=int, default=30000,
        help="cap on client-requested deadlines",
    )
    parser.add_argument(
        "--max-inflight", type=int, default=64,
        help="bounded compute queue; beyond this requests are shed",
    )
    parser.add_argument(
        "--retry-after-ms", type=int, default=50,
        help="retry hint attached to OVERLOADED sheds",
    )
    parser.add_argument(
        "--compute-threads", type=int, default=8, help="compute worker threads"
    )
    parser.add_argument(
        "--cache-size", type=int, default=8192, help="result-cache entry bound"
    )
    parser.add_argument(
        "--cache-shards", type=int, default=8, help="result-cache shard count"
    )
    parser.add_argument(
        "--cache-ttl-s", type=float, default=300.0,
        help="result freshness window; 0 disables expiry",
    )
    parser.add_argument(
        "--breaker-threshold", type=int, default=5,
        help="consecutive compute failures that trip a shard breaker",
    )
    parser.add_argument(
        "--breaker-reset-s", type=float, default=1.0,
        help="breaker cooldown before the half-open probe",
    )
    parser.add_argument(
        "--snapshot", metavar="PATH", default=None,
        help="crash-safe cache snapshot file (warm-start + periodic save)",
    )
    parser.add_argument(
        "--snapshot-interval-s", type=float, default=30.0,
        help="seconds between periodic snapshots",
    )
    parser.add_argument(
        "--snapshot-limit", type=int, default=1024,
        help="hottest-N entries persisted per snapshot",
    )
    parser.add_argument(
        "--trace-dir", metavar="DIR", default=None,
        help="enable observability and flush JSONL traces here periodically",
    )
    parser.add_argument(
        "--flush-interval-s", type=float, default=60.0,
        help="seconds between trace flushes (with --trace-dir)",
    )
    parser.add_argument(
        "--max-spans", type=int, default=65536,
        help="span ring size (with --trace-dir)",
    )
    parser.add_argument(
        "--http-host", default=None, metavar="HOST",
        help="bind an aux HTTP listener (/metrics, /healthz, /statusz) "
             "on this host; off unless set",
    )
    parser.add_argument(
        "--http-port", type=int, default=0,
        help="aux HTTP port (0 = kernel-assigned; with --http-host)",
    )
    parser.add_argument(
        "--chaos-seed", type=int, default=None,
        help="enable deterministic compute chaos with this seed (soak only)",
    )
    parser.add_argument("--chaos-stall", type=float, default=0.0)
    parser.add_argument("--chaos-fail", type=float, default=0.0)
    parser.add_argument("--chaos-kill", type=float, default=0.0)
    parser.add_argument("--chaos-stall-s", type=float, default=0.2)
    return parser


def _build_config(args):
    from ..obs import HandleLimits, Observability
    from .chaos import ServiceChaos
    from .server import ServiceConfig

    address = _resolve_address(args)
    obs = None
    if args.trace_dir:
        obs = Observability(
            handle_limits=HandleLimits(max_spans=args.max_spans)
        )
    chaos = None
    if args.chaos_seed is not None:
        chaos = ServiceChaos(
            seed=args.chaos_seed,
            stall_rate=args.chaos_stall,
            fail_rate=args.chaos_fail,
            kill_rate=args.chaos_kill,
            stall_s=args.chaos_stall_s,
        )
    return ServiceConfig(
        unix_path=address if isinstance(address, str) else None,
        host=None if isinstance(address, str) else address[0],
        port=0 if isinstance(address, str) else address[1],
        default_deadline_ms=args.deadline_ms,
        max_deadline_ms=args.max_deadline_ms,
        max_inflight=args.max_inflight,
        retry_after_ms=args.retry_after_ms,
        compute_threads=args.compute_threads,
        cache_size=args.cache_size,
        cache_shards=args.cache_shards,
        cache_ttl_s=args.cache_ttl_s if args.cache_ttl_s > 0 else None,
        breaker_threshold=args.breaker_threshold,
        breaker_reset_s=args.breaker_reset_s,
        snapshot_path=args.snapshot,
        snapshot_interval_s=args.snapshot_interval_s,
        snapshot_limit=args.snapshot_limit,
        obs=obs,
        flush_dir=args.trace_dir,
        flush_interval_s=args.flush_interval_s,
        chaos=chaos,
        http_host=args.http_host,
        http_port=args.http_port,
    )


async def _run_server(config) -> None:
    from .server import PlanServer

    server = PlanServer(config)
    await server.start()
    print(
        f"[repro.service] pid {os.getpid()} listening on {server.address}"
        + (
            f" (warm-started {server.warm_started_entries} entries)"
            if server.warm_started_entries
            else ""
        ),
        flush=True,
    )
    if server.http is not None:
        host, port = server.http.address
        print(
            f"[repro.service] metrics on http://{host}:{port}/metrics",
            flush=True,
        )
    loop = asyncio.get_running_loop()
    stop = asyncio.Event()
    for sig in (signal.SIGINT, signal.SIGTERM):
        try:
            loop.add_signal_handler(sig, stop.set)
        except NotImplementedError:  # pragma: no cover - non-unix loops
            pass
    serve_task = loop.create_task(server.serve_forever())
    await stop.wait()
    print("[repro.service] shutting down", flush=True)
    serve_task.cancel()
    try:
        await serve_task
    except asyncio.CancelledError:
        pass
    await server.stop()


def serve_main(argv: list[str] | None = None) -> int:
    args = _serve_parser().parse_args(argv)
    asyncio.run(_run_server(_build_config(args)))
    return 0


# ---------------------------------------------------------------------------
# plan-client
# ---------------------------------------------------------------------------


def _client_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro plan-client",
        description="Query a running planning service.",
    )
    _add_address_args(parser)
    parser.add_argument(
        "op", choices=["ping", "stats", "plan", "localize", "schedule"]
    )
    parser.add_argument(
        "params", nargs="*", metavar="key=int",
        help="integer query parameters, e.g. p=4 k=8 l=4 s=9 m=1",
    )
    parser.add_argument(
        "--json", dest="params_json", metavar="JSON", default=None,
        help="full params object as JSON (for nested schedule params)",
    )
    parser.add_argument(
        "--deadline-ms", type=int, default=2000, help="per-request deadline"
    )
    parser.add_argument(
        "--retries", type=int, default=3,
        help="max budgeted retries on retryable failures",
    )
    parser.add_argument(
        "--count", type=int, default=1, help="send the request N times"
    )
    return parser


def _parse_params(args) -> dict:
    if args.params_json is not None:
        if args.params:
            raise SystemExit("use either key=int params or --json, not both")
        params = json.loads(args.params_json)
        if not isinstance(params, dict):
            raise SystemExit("--json must be a JSON object")
        return params
    params: dict = {}
    for item in args.params:
        key, sep, value = item.partition("=")
        if not sep or not key:
            raise SystemExit(f"malformed parameter {item!r}; want key=int")
        try:
            params[key] = int(value)
        except ValueError:
            raise SystemExit(f"parameter {key!r} must be an integer, got {value!r}")
    return params


def client_main(argv: list[str] | None = None) -> int:
    from .client import PlanClient
    from .protocol import ServiceError

    args = _client_parser().parse_args(argv)
    params = _parse_params(args)
    client = PlanClient(
        _resolve_address(args),
        default_deadline_ms=args.deadline_ms,
        max_retries=args.retries,
    )
    status = 0
    with client:
        for _ in range(args.count):
            try:
                response = client.call(args.op, params)
            except ServiceError as exc:
                print(
                    json.dumps({"ok": False, "code": exc.code, "message": exc.message}),
                    file=sys.stderr,
                )
                status = 1
                continue
            print(json.dumps(response, sort_keys=True))
    return status


def main(argv: list[str] | None = None) -> int:  # pragma: no cover - alias
    return serve_main(argv)
