"""Seeded, deterministic fault injection for the planning service.

The same philosophy as :mod:`repro.machine.faults`: chaos is a *plan*
derived from a seed, never ambient randomness, so any soak failure
replays exactly from its seed.  The decision for request ``n`` is a
pure function of ``(seed, n)`` -- independent of thread interleaving,
connection multiplexing, or retry order.

Three compute-side fault kinds (client-side stalls and snapshot
truncation are driven directly by the tests/bench, since they live
outside the server process):

* ``stall`` -- the compute sleeps ``stall_s`` seconds, long enough to
  blow a request deadline (exercises server-side deadline enforcement
  and queue backpressure);
* ``fail``  -- the compute raises :class:`ChaosFailure` (exercises the
  circuit breaker and the INTERNAL error path);
* ``kill``  -- the compute raises :class:`ChaosKill`, modelling a
  compute worker that dies abruptly mid-plan (same observable effect as
  ``fail`` but counted separately, mirroring the machine layer's
  crash-vs-corrupt distinction).
"""

from __future__ import annotations

import random
import time
from dataclasses import dataclass, field

__all__ = ["ChaosFailure", "ChaosKill", "ServiceChaos"]


class ChaosFailure(RuntimeError):
    """Injected compute failure (deterministic from the chaos seed)."""


class ChaosKill(ChaosFailure):
    """Injected abrupt compute-worker death."""


@dataclass
class ServiceChaos:
    """Per-request fault plan for the service's compute path."""

    seed: int
    stall_rate: float = 0.0
    fail_rate: float = 0.0
    kill_rate: float = 0.0
    stall_s: float = 0.2
    injected: dict = field(default_factory=lambda: {"stall": 0, "fail": 0, "kill": 0})

    def __post_init__(self) -> None:
        for name in ("stall_rate", "fail_rate", "kill_rate"):
            rate = getattr(self, name)
            if not 0.0 <= rate <= 1.0:
                raise ValueError(f"{name} must be in [0, 1], got {rate}")

    def decision(self, request_n: int) -> str | None:
        """The fault (if any) injected into request number ``request_n``:
        one draw, partitioned stall | fail | kill | None."""
        draw = random.Random((self.seed << 20) ^ request_n).random()
        if draw < self.stall_rate:
            return "stall"
        draw -= self.stall_rate
        if draw < self.fail_rate:
            return "fail"
        draw -= self.fail_rate
        if draw < self.kill_rate:
            return "kill"
        return None

    def perturb_compute(self, request_n: int) -> None:
        """Apply request ``request_n``'s fault inside the compute path
        (called from the worker thread, before the real evaluation)."""
        kind = self.decision(request_n)
        if kind is None:
            return
        self.injected[kind] += 1
        if kind == "stall":
            time.sleep(self.stall_s)
        elif kind == "fail":
            raise ChaosFailure(f"injected compute failure (request {request_n})")
        else:
            raise ChaosKill(f"injected compute-worker death (request {request_n})")
