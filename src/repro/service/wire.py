"""JSON messages over the CRC frame format, sync and asyncio.

The planning service speaks the multiprocess backend's frame format
(:mod:`repro.machine.mp.framing`: ``MAGIC | length | crc32 | payload``)
with JSON payloads instead of pickle -- clients in any language can
speak it, and a hostile or confused peer can never make the server
unpickle arbitrary objects.  The CRC turns truncated or interleaved
writes into a clean :class:`~repro.machine.mp.framing.FrameError`
instead of a JSON parse error mid-stream.

Two transports share the byte-level helpers:

* blocking sockets (the CLI client) via :func:`send_message` /
  :func:`recv_message`, deadline-bounded like every mp-backend read;
* asyncio streams (the server) via :func:`read_message` /
  :func:`write_message`, each await bounded by a timeout so a stalled
  peer surfaces as :class:`~repro.machine.mp.framing.FrameTimeout`,
  never as a hung connection task.

Messages are JSON *objects* (dicts) by construction; anything else is a
protocol error.  Encoding is canonical (sorted keys, compact
separators, ``allow_nan=False``) so equal messages are equal bytes --
the differential tests compare served plans byte-for-byte.
"""

from __future__ import annotations

import asyncio
import json
import socket

from ..machine.mp.framing import (
    HEADER_SIZE,
    FrameClosed,
    FrameError,
    FrameTimeout,
    _recv_exact,
    pack_frame,
    parse_header,
    verify_payload,
)
from ..machine.mp.timeouts import Deadline

__all__ = [
    "encode_message",
    "decode_payload",
    "send_message",
    "recv_message",
    "read_message",
    "write_message",
]


def encode_message(obj: dict) -> bytes:
    """Canonical JSON encoding wrapped in one CRC frame."""
    payload = json.dumps(
        obj, sort_keys=True, separators=(",", ":"), allow_nan=False
    ).encode("utf-8")
    return pack_frame(payload)


def decode_payload(payload: bytes) -> dict:
    """Parse a verified frame payload into a message dict."""
    try:
        obj = json.loads(payload.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise FrameError(f"frame payload is not valid JSON: {exc}") from None
    if not isinstance(obj, dict):
        raise FrameError(f"message must be a JSON object, got {type(obj).__name__}")
    return obj


# ---------------------------------------------------------------------------
# Blocking-socket transport (client side)
# ---------------------------------------------------------------------------


def send_message(sock: socket.socket, obj: dict) -> int:
    """Write one message; returns bytes written (all-or-raise)."""
    frame = encode_message(obj)
    sock.sendall(frame)
    return len(frame)


def recv_message(sock: socket.socket, deadline: Deadline) -> dict:
    """Read one complete message before the deadline or raise."""
    header = _recv_exact(sock, HEADER_SIZE, deadline, "frame header")
    length, crc = parse_header(header)
    payload = _recv_exact(sock, length, deadline, "frame payload")
    return decode_payload(verify_payload(payload, crc))


# ---------------------------------------------------------------------------
# Asyncio-stream transport (server side)
# ---------------------------------------------------------------------------


async def _read_exact(
    reader: asyncio.StreamReader, n: int, timeout: float, what: str
) -> bytes:
    try:
        return await asyncio.wait_for(reader.readexactly(n), timeout=timeout)
    except asyncio.TimeoutError:
        raise FrameTimeout(f"timed out reading {what}") from None
    except asyncio.IncompleteReadError as exc:
        if exc.partial:
            raise FrameError(
                f"peer closed mid-{what} ({len(exc.partial)}/{n} bytes)"
            ) from None
        raise FrameClosed(f"peer closed before {what}") from None


async def read_message(reader: asyncio.StreamReader, timeout: float) -> dict:
    """Read one complete message within ``timeout`` seconds total."""
    deadline = Deadline(timeout)
    header = await _read_exact(
        reader, HEADER_SIZE, max(deadline.remaining(), 1e-4), "frame header"
    )
    length, crc = parse_header(header)
    payload = await _read_exact(
        reader, length, max(deadline.remaining(), 1e-4), "frame payload"
    )
    return decode_payload(verify_payload(payload, crc))


async def write_message(
    writer: asyncio.StreamWriter, obj: dict, timeout: float = 30.0
) -> None:
    """Write one message and drain within ``timeout`` seconds -- a client
    that stops reading surfaces as :class:`FrameTimeout`, never as a
    connection task blocked forever on a full socket buffer."""
    writer.write(encode_message(obj))
    try:
        await asyncio.wait_for(writer.drain(), timeout=timeout)
    except asyncio.TimeoutError:
        raise FrameTimeout("timed out draining response to peer") from None
