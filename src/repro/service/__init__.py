"""The crash-safe layout-planning service (ROADMAP item 3).

A long-running asyncio server that answers the paper's three layout
queries -- access-table plans, localized section vectors, and 1-D
communication schedules -- over framed JSON, backed by the sharded plan
cache, with the full robustness kit: server-side deadlines, bounded
queues with load-shedding admission control, per-shard circuit
breakers, graceful degradation (stale/reference plans tagged
``degraded`` but always bit-identical to fresh computation), and
crash-safe CRC-checksummed cache snapshots.

Layers, bottom up:

* :mod:`.wire`      -- framed canonical-JSON messages (sync + asyncio);
* :mod:`.protocol`  -- request/response schema, error codes, cache keys;
* :mod:`.queries`   -- the pure query evaluators (production + oracle);
* :mod:`.breaker`   -- the per-shard circuit breaker;
* :mod:`.snapshot`  -- atomic, paranoidly-verified persistence;
* :mod:`.chaos`     -- seeded deterministic fault injection;
* :mod:`.server`    -- :class:`PlanServer` (the asyncio data plane);
* :mod:`.client`    -- :class:`PlanClient` (budgeted-retry client);
* :mod:`.cli`       -- ``python -m repro serve`` / ``plan-client``.

See docs/SERVICE.md for the protocol, the degradation ladder, and the
fault model; benchmarks/bench_service.py measures it.
"""

from .breaker import CircuitBreaker
from .chaos import ChaosFailure, ChaosKill, ServiceChaos
from .client import PlanClient, RetryBudget
from .protocol import (
    BAD_REQUEST,
    DEADLINE_EXCEEDED,
    INTERNAL,
    OVERLOADED,
    RETRYABLE_CODES,
    UNAVAILABLE,
    RequestError,
    ServiceError,
    canonical_key,
)
from .server import PlanServer, ServiceConfig
from .snapshot import SnapshotError, load_snapshot, save_snapshot

__all__ = [
    "BAD_REQUEST",
    "DEADLINE_EXCEEDED",
    "INTERNAL",
    "OVERLOADED",
    "RETRYABLE_CODES",
    "UNAVAILABLE",
    "ChaosFailure",
    "ChaosKill",
    "CircuitBreaker",
    "PlanClient",
    "PlanServer",
    "RequestError",
    "RetryBudget",
    "ServiceChaos",
    "ServiceConfig",
    "ServiceError",
    "SnapshotError",
    "canonical_key",
    "load_snapshot",
    "save_snapshot",
]
