"""Request/response schema, error codes, and canonical cache keys.

One request, one response, in order, per connection::

    request  = {"id": int, "op": str, "params": {...}, "deadline_ms": int?}
    response = {"id": int|null, "ok": true,  "result": {...},
                "degraded": bool, "source": str, "server_ms": float}
             | {"id": int|null, "ok": false,
                "error": {"code": str, "message": str},
                "retry_after_ms": int?}

``source`` says where a successful plan came from (``cache``,
``computed``, ``coalesced``, ``stale-cache``, ``reference``, or
``inline`` for ping/stats); ``degraded: true`` marks the last two --
plans served while the normal path was unavailable (tripped breaker,
saturated queue).  Degraded plans are still *correct* -- every query is
a pure function of its parameters, so a stale cache entry or a
reference-path computation is bit-identical to the fresh plan; the flag
tells the client the service was not healthy, never that the answer
might be wrong.

Error codes partition by retryability:

* ``OVERLOADED`` -- admission control shed the request; retry after
  ``retry_after_ms`` (the explicit backpressure signal, never unbounded
  buffering).
* ``DEADLINE_EXCEEDED`` -- the server-side deadline fired; the request
  never had side effects, so an idempotent retry is safe.
* ``UNAVAILABLE`` -- tripped shard with nothing to degrade to, or the
  server is shutting down; retryable.
* ``BAD_REQUEST`` / ``INTERNAL`` -- deterministic failures; retrying
  the identical request cannot help and clients must not.
"""

from __future__ import annotations

import json
from dataclasses import dataclass

__all__ = [
    "BAD_REQUEST",
    "DEADLINE_EXCEEDED",
    "INTERNAL",
    "OVERLOADED",
    "RETRYABLE_CODES",
    "UNAVAILABLE",
    "PROTOCOL_OPS",
    "RequestError",
    "ServiceError",
    "Request",
    "canonical_key",
    "error_response",
    "ok_response",
    "parse_request",
]

BAD_REQUEST = "BAD_REQUEST"
DEADLINE_EXCEEDED = "DEADLINE_EXCEEDED"
OVERLOADED = "OVERLOADED"
UNAVAILABLE = "UNAVAILABLE"
INTERNAL = "INTERNAL"

#: Codes a client may retry (idempotent timeout / explicit backpressure).
RETRYABLE_CODES = frozenset({DEADLINE_EXCEEDED, OVERLOADED, UNAVAILABLE})

#: Every operation the server answers.  ``ping`` and ``stats`` are
#: control-plane (answered inline, never queued, never cached).
PROTOCOL_OPS = ("ping", "stats", "plan", "localize", "schedule")


class ServiceError(Exception):
    """A protocol-level failure carrying its wire error code."""

    def __init__(self, code: str, message: str, retry_after_ms: int | None = None):
        super().__init__(f"{code}: {message}")
        self.code = code
        self.message = message
        self.retry_after_ms = retry_after_ms

    @property
    def retryable(self) -> bool:
        return self.code in RETRYABLE_CODES


class RequestError(ServiceError):
    """Malformed or out-of-range request (``BAD_REQUEST``)."""

    def __init__(self, message: str):
        super().__init__(BAD_REQUEST, message)


@dataclass(frozen=True, slots=True)
class Request:
    """A validated request envelope (params validated per-op later)."""

    id: int
    op: str
    params: dict
    deadline_ms: int | None


def parse_request(msg: dict) -> Request:
    """Validate the request envelope; :class:`RequestError` on anything
    malformed (the caller maps that to a ``BAD_REQUEST`` response)."""
    req_id = msg.get("id")
    if not isinstance(req_id, int) or isinstance(req_id, bool):
        raise RequestError(f"request id must be an integer, got {req_id!r}")
    op = msg.get("op")
    if op not in PROTOCOL_OPS:
        raise RequestError(f"unknown op {op!r}; choose from {list(PROTOCOL_OPS)}")
    params = msg.get("params", {})
    if not isinstance(params, dict):
        raise RequestError(f"params must be an object, got {type(params).__name__}")
    deadline_ms = msg.get("deadline_ms")
    if deadline_ms is not None:
        if not isinstance(deadline_ms, int) or isinstance(deadline_ms, bool):
            raise RequestError(f"deadline_ms must be an integer, got {deadline_ms!r}")
        if deadline_ms <= 0:
            raise RequestError(f"deadline_ms must be positive, got {deadline_ms}")
    unknown = set(msg) - {"id", "op", "params", "deadline_ms"}
    if unknown:
        raise RequestError(f"unknown request fields {sorted(unknown)}")
    return Request(req_id, op, params, deadline_ms)


def canonical_key(op: str, params: dict) -> str:
    """The cache/snapshot key: op plus canonically serialized params.
    Equal queries produce equal keys regardless of field order."""
    return f"{op}:" + json.dumps(
        params, sort_keys=True, separators=(",", ":"), allow_nan=False
    )


def ok_response(
    req_id: int | None,
    result: dict,
    *,
    source: str,
    degraded: bool,
    server_ms: float,
) -> dict:
    return {
        "id": req_id,
        "ok": True,
        "result": result,
        "source": source,
        "degraded": degraded,
        "server_ms": round(server_ms, 3),
    }


def error_response(
    req_id: int | None,
    code: str,
    message: str,
    retry_after_ms: int | None = None,
) -> dict:
    resp: dict = {"id": req_id, "ok": False, "error": {"code": code, "message": message}}
    if retry_after_ms is not None:
        resp["retry_after_ms"] = retry_after_ms
    return resp
