"""Crash-safe persistence of the service's hot cache entries.

The snapshot is one CRC frame (the same ``MAGIC | length | crc32 |
payload`` format as the wire and the mp backend) whose payload is a
canonical-JSON document::

    {"format": 1,
     "saved_at_unix": <float>,
     "meta": {...},                      # free-form server info
     "entries": [{"key": "<op>:<canonical params>",
                  "value": {...},       # the served result, verbatim
                  "freq": <int>}, ...]}

Writes are atomic: the frame is written to ``<path>.tmp.<pid>``,
flushed, fsync'd, and ``os.replace``d over the destination -- a crash
at any instant leaves either the old snapshot or the new one, never a
torn file.  (A stray tmp file from a crashed writer is inert and gets
overwritten by the next save.)

Loads are paranoid: magic, length bound, *exact* length match, CRC,
JSON decode, format version, and per-entry shape are all checked, and
every failure raises :class:`SnapshotError` naming what was wrong --
the server logs the diagnostic and boots cold rather than warm-starting
from a corrupt snapshot.  Because the snapshot holds pure-function
results keyed by canonical query, a *stale* (old but intact) snapshot
can never make the server serve a wrong plan; only torn/corrupt bytes
are dangerous, and the CRC catches those.
"""

from __future__ import annotations

import json
import os
import time
from pathlib import Path

from ..machine.mp.framing import (
    HEADER_SIZE,
    FrameError,
    pack_frame,
    parse_header,
    verify_payload,
)

__all__ = ["SnapshotError", "load_snapshot", "save_snapshot"]

SNAPSHOT_FORMAT = 1


class SnapshotError(RuntimeError):
    """A snapshot file that must not be warm-started from; the message
    names the failing check (truncation, CRC, format, shape)."""


def save_snapshot(path, entries: list[tuple[str, dict, int]], meta: dict | None = None) -> Path:
    """Atomically persist ``(key, value, freq)`` triples to ``path``."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    doc = {
        "format": SNAPSHOT_FORMAT,
        "saved_at_unix": time.time(),
        "meta": meta or {},
        "entries": [
            {"key": key, "value": value, "freq": int(freq)}
            for key, value, freq in entries
        ],
    }
    payload = json.dumps(
        doc, sort_keys=True, separators=(",", ":"), allow_nan=False
    ).encode("utf-8")
    frame = pack_frame(payload)
    tmp = path.with_name(f"{path.name}.tmp.{os.getpid()}")
    with open(tmp, "wb") as fh:
        fh.write(frame)
        fh.flush()
        os.fsync(fh.fileno())
    os.replace(tmp, path)
    return path


def load_snapshot(path) -> tuple[list[tuple[str, dict, int]], dict]:
    """Read and fully verify a snapshot; returns ``(entries, meta)``.

    Raises :class:`SnapshotError` on any defect (missing file included)
    -- callers decide whether a cold start is acceptable.
    """
    path = Path(path)
    try:
        blob = path.read_bytes()
    except OSError as exc:
        raise SnapshotError(f"cannot read snapshot {path}: {exc}") from None
    if len(blob) < HEADER_SIZE:
        raise SnapshotError(
            f"snapshot {path} truncated: {len(blob)} bytes < {HEADER_SIZE}-byte header"
        )
    try:
        length, crc = parse_header(blob[:HEADER_SIZE])
    except FrameError as exc:
        raise SnapshotError(f"snapshot {path} header invalid: {exc}") from None
    payload = blob[HEADER_SIZE:]
    if len(payload) != length:
        raise SnapshotError(
            f"snapshot {path} truncated or padded: header says {length} payload "
            f"bytes, file has {len(payload)}"
        )
    try:
        verify_payload(payload, crc)
    except FrameError as exc:
        raise SnapshotError(f"snapshot {path} corrupt: {exc}") from None
    try:
        doc = json.loads(payload.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise SnapshotError(
            f"snapshot {path} payload passed CRC but is not JSON: {exc}"
        ) from None
    if not isinstance(doc, dict) or doc.get("format") != SNAPSHOT_FORMAT:
        raise SnapshotError(
            f"snapshot {path} has unsupported format "
            f"{doc.get('format') if isinstance(doc, dict) else type(doc).__name__!r} "
            f"(want {SNAPSHOT_FORMAT})"
        )
    raw_entries = doc.get("entries")
    if not isinstance(raw_entries, list):
        raise SnapshotError(f"snapshot {path} has no entries list")
    entries: list[tuple[str, dict, int]] = []
    for i, entry in enumerate(raw_entries):
        if (
            not isinstance(entry, dict)
            or not isinstance(entry.get("key"), str)
            or not isinstance(entry.get("value"), dict)
            or not isinstance(entry.get("freq"), int)
        ):
            raise SnapshotError(f"snapshot {path} entry {i} malformed: {entry!r}")
        entries.append((entry["key"], entry["value"], entry["freq"]))
    meta = doc.get("meta")
    return entries, meta if isinstance(meta, dict) else {}
