"""Query evaluators: the pure functions the planning service serves.

Three data-plane operations, each a pure function of small layout
descriptors (which is what makes them ideal service material -- ROADMAP
item 3):

* ``plan``     -- the paper's ΔM access table for ``(p, k, l, s, m)``;
* ``localize`` -- the localized (indices, slots) vectors of a section
  under an affine alignment on one rank;
* ``schedule`` -- the full communication schedule of a 1-D
  array-assignment statement between two cyclic(k) layouts.

Each op has two implementations with identical JSON results:

* :func:`evaluate` -- the production path (O(k) tables, vectorized
  kernels, plan caches);
* :func:`reference` -- the scalar/naive oracle path (brute-force
  enumeration, element-at-a-time schedules), used by the degradation
  ladder when a shard's circuit breaker is open and by the differential
  tests as ground truth.

Results contain only JSON integers/lists, so "bit-identical" is exact:
two responses agree iff their canonical JSON encodings are equal bytes.
Parameter validation raises :class:`~repro.service.protocol.RequestError`
with the offending field named; size caps keep a single hostile or
confused query from tying up a compute slot for minutes.
"""

from __future__ import annotations

from ..core.access import compute_access_table
from ..core.baselines.naive import naive_access_table
from ..distribution import (
    Alignment,
    AxisMap,
    CyclicK,
    DistributedArray,
    ProcessorGrid,
    RegularSection,
)
from ..distribution.localize import localized_elements
from ..runtime.commsets import compute_comm_schedule, compute_comm_schedule_reference
from ..runtime.plancache import cached_comm_schedule, cached_localized_arrays
from .protocol import RequestError

__all__ = ["QUERY_OPS", "evaluate", "reference"]

#: Size caps: generous for real layouts, tight enough that even the
#: brute-force reference path finishes within a sane deadline.
MAX_P = 1 << 14
MAX_K = 1 << 18
MAX_PK = 1 << 20
MAX_EXTENT = 1 << 20
MAX_SCHEDULE_N = 1 << 16
MAX_ALIGN = 1 << 16


def _int_param(params: dict, name: str, lo: int | None = None, hi: int | None = None):
    if name not in params:
        raise RequestError(f"missing required parameter {name!r}")
    value = params[name]
    if not isinstance(value, int) or isinstance(value, bool):
        raise RequestError(f"parameter {name!r} must be an integer, got {value!r}")
    if lo is not None and value < lo:
        raise RequestError(f"parameter {name!r} must be >= {lo}, got {value}")
    if hi is not None and value > hi:
        raise RequestError(f"parameter {name!r} must be <= {hi}, got {value}")
    return value


def _check_fields(params: dict, allowed: set[str], where: str) -> None:
    unknown = set(params) - allowed
    if unknown:
        raise RequestError(f"unknown {where} parameters {sorted(unknown)}")


# ---------------------------------------------------------------------------
# plan: the paper's access table
# ---------------------------------------------------------------------------


def _plan_params(params: dict) -> tuple[int, int, int, int, int]:
    _check_fields(params, {"p", "k", "l", "s", "m"}, "plan")
    p = _int_param(params, "p", 1, MAX_P)
    k = _int_param(params, "k", 1, MAX_K)
    if p * k > MAX_PK:
        raise RequestError(f"p*k must be <= {MAX_PK}, got {p * k}")
    l = _int_param(params, "l", 0, MAX_EXTENT)
    s = _int_param(params, "s", 1, MAX_EXTENT)
    m = _int_param(params, "m", 0, p - 1)
    return p, k, l, s, m


def _plan_result(table) -> dict:
    return {
        "start": table.start,
        "length": table.length,
        "gaps": [int(g) for g in table.gaps],
        "index_gaps": [int(g) for g in table.index_gaps],
    }


def _eval_plan(params: dict) -> dict:
    return _plan_result(compute_access_table(*_plan_params(params)))


def _ref_plan(params: dict) -> dict:
    return _plan_result(naive_access_table(*_plan_params(params)))


# ---------------------------------------------------------------------------
# localize: section index/slot vectors under affine alignment
# ---------------------------------------------------------------------------


def _localize_params(params: dict):
    _check_fields(
        params,
        {"p", "k", "extent", "align_a", "align_b", "lower", "upper", "stride", "rank"},
        "localize",
    )
    p = _int_param(params, "p", 1, MAX_P)
    k = _int_param(params, "k", 1, MAX_K)
    if p * k > MAX_PK:
        raise RequestError(f"p*k must be <= {MAX_PK}, got {p * k}")
    extent = _int_param(params, "extent", 1, MAX_EXTENT)
    a = _int_param(params, "align_a", -MAX_ALIGN, MAX_ALIGN)
    if a == 0:
        raise RequestError("parameter 'align_a' must be nonzero")
    b = _int_param(params, "align_b", -MAX_ALIGN, MAX_ALIGN)
    lower = _int_param(params, "lower", 0, extent - 1)
    upper = _int_param(params, "upper", 0, extent - 1)
    stride = _int_param(params, "stride", 1, MAX_EXTENT)
    rank = _int_param(params, "rank", 0, p - 1)
    return p, k, extent, Alignment(a, b), RegularSection(lower, upper, stride), rank


def _eval_localize(params: dict) -> dict:
    p, k, extent, align, section, rank = _localize_params(params)
    indices, slots = cached_localized_arrays(p, k, extent, align, section, rank)
    return {"indices": [int(i) for i in indices], "slots": [int(s) for s in slots]}


def _ref_localize(params: dict) -> dict:
    p, k, extent, align, section, rank = _localize_params(params)
    pairs = localized_elements(p, k, extent, align, section, rank)
    return {"indices": [int(i) for i, _ in pairs], "slots": [int(s) for _, s in pairs]}


# ---------------------------------------------------------------------------
# schedule: 1-D statement communication schedules
# ---------------------------------------------------------------------------


def _side_params(params: dict, side: str, p: int, n: int):
    spec = params.get(side)
    if not isinstance(spec, dict):
        raise RequestError(f"parameter {side!r} must be an object describing one side")
    _check_fields(
        spec, {"k", "align_a", "align_b", "lower", "upper", "stride"}, side
    )
    k = _int_param(spec, "k", 1, MAX_K)
    if p * k > MAX_PK:
        raise RequestError(f"{side}: p*k must be <= {MAX_PK}, got {p * k}")
    a = _int_param(spec, "align_a", -MAX_ALIGN, MAX_ALIGN) if "align_a" in spec else 1
    if a == 0:
        raise RequestError(f"{side}: 'align_a' must be nonzero")
    b = _int_param(spec, "align_b", -MAX_ALIGN, MAX_ALIGN) if "align_b" in spec else 0
    lower = _int_param(spec, "lower", 0, n - 1)
    upper = _int_param(spec, "upper", 0, n - 1)
    stride = _int_param(spec, "stride", 1, MAX_SCHEDULE_N)
    return k, Alignment(a, b), RegularSection(lower, upper, stride)


def _schedule_arrays(params: dict):
    _check_fields(params, {"n", "p", "lhs", "rhs"}, "schedule")
    n = _int_param(params, "n", 1, MAX_SCHEDULE_N)
    p = _int_param(params, "p", 1, MAX_P)
    k_a, align_a, sec_a = _side_params(params, "lhs", p, n)
    k_b, align_b, sec_b = _side_params(params, "rhs", p, n)
    if len(sec_a) != len(sec_b):
        raise RequestError(
            f"sections are not conformable: lhs has {len(sec_a)} elements, "
            f"rhs has {len(sec_b)}"
        )
    grid = ProcessorGrid("G", (p,))
    lhs = DistributedArray(
        "A", (n,), grid, (AxisMap(CyclicK(k_a), align_a, grid_axis=0),)
    )
    rhs = DistributedArray(
        "B", (n,), grid, (AxisMap(CyclicK(k_b), align_b, grid_axis=0),)
    )
    return lhs, sec_a, rhs, sec_b


def _schedule_result(schedule) -> dict:
    return {
        "n_iterations": schedule.n_iterations,
        "locals": [list(t.astuples()) for t in schedule.locals_],
        "transfers": [list(t.astuples()) for t in schedule.transfers],
    }


def _eval_schedule(params: dict, use_cache: bool = True) -> dict:
    lhs, sec_a, rhs, sec_b = _schedule_arrays(params)
    if use_cache:
        schedule = cached_comm_schedule(lhs, sec_a, rhs, sec_b)
    else:
        schedule = compute_comm_schedule(lhs, sec_a, rhs, sec_b)
    return _schedule_result(schedule)


def _ref_schedule(params: dict) -> dict:
    lhs, sec_a, rhs, sec_b = _schedule_arrays(params)
    return _schedule_result(compute_comm_schedule_reference(lhs, sec_a, rhs, sec_b))


# ---------------------------------------------------------------------------
# Dispatch
# ---------------------------------------------------------------------------

QUERY_OPS = ("plan", "localize", "schedule")


def evaluate(op: str, params: dict, use_cache: bool = True) -> dict:
    """Production-path evaluation.  ``use_cache=False`` bypasses the
    plan caches (the differential tests' "direct computation").

    ``plan`` results are never plan-cache mediated (the table build is
    already O(k)); the service's own result cache sits above this.
    """
    if op == "plan":
        return _eval_plan(params)
    if op == "localize":
        if use_cache:
            return _eval_localize(params)
        p, k, extent, align, section, rank = _localize_params(params)
        from ..distribution.localize import localized_arrays

        indices, slots = localized_arrays(p, k, extent, align, section, rank)
        return {
            "indices": [int(i) for i in indices],
            "slots": [int(s) for s in slots],
        }
    if op == "schedule":
        return _eval_schedule(params, use_cache=use_cache)
    raise RequestError(f"unknown query op {op!r}")


def reference(op: str, params: dict) -> dict:
    """Scalar/naive oracle evaluation -- slower, independently coded,
    bit-identical results."""
    if op == "plan":
        return _ref_plan(params)
    if op == "localize":
        return _ref_localize(params)
    if op == "schedule":
        return _ref_schedule(params)
    raise RequestError(f"unknown query op {op!r}")
