"""The asyncio planning server: deadlines, backpressure, degradation.

:class:`PlanServer` answers plan/localize/schedule queries over framed
JSON (unix-domain or TCP; :mod:`repro.service.wire`), backed by a
:class:`~repro.runtime.plancache.ShardedPlanCache` of canonical-query
results.  The design goal is *robust by construction*: the server may
refuse, time out, or degrade, but it never serves a wrong plan, never
buffers without bound, and never blocks past a deadline.

Request lifecycle::

    read (idle-bounded) -> validate -> fresh cache hit?  ---- yes --> serve
        |no
    breaker open for this key's shard? -- yes --> stale entry / reference
        |no                                        (both tagged degraded)
    inflight full? -- yes --> stale entry (degraded) or OVERLOADED shed
        |no                     with retry_after_ms -- never queued blind
    compute in worker thread, bounded by the request deadline
        ok --> serve (source: computed | cache)     timeout --> DEADLINE_
        failure --> breaker.record_failure, INTERNAL            EXCEEDED

Every await is bounded: connection reads by ``idle_timeout_s`` (a
stalled client loses its connection, not a server task), response
writes by ``write_timeout_s`` (a client that stops draining is shed),
and computes by the per-request deadline (enforced server-side with
``asyncio.wait_for``; the worker thread finishes in the background and
releases its admission slot only then, so zombie stalls still count
against ``max_inflight`` -- that *is* the backpressure).

Degraded responses (``degraded: true``) are stale-cache or
reference-path plans: bit-identical to fresh computation (pure
functions), flagged so clients know the service was unhealthy.  See
docs/SERVICE.md for the full fault model and ladder.
"""

from __future__ import annotations

import asyncio
import os
import sys
import time
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field

from ..machine.mp.framing import FrameClosed, FrameError, FrameTimeout
from ..obs import Observability, SpanRecord, ambient
from ..runtime import plancache as plancache_mod
from ..runtime.plancache import ShardedPlanCache
from .breaker import CircuitBreaker
from .chaos import ServiceChaos
from .protocol import (
    DEADLINE_EXCEEDED,
    INTERNAL,
    OVERLOADED,
    UNAVAILABLE,
    RequestError,
    ServiceError,
    canonical_key,
    error_response,
    ok_response,
    parse_request,
)
from .queries import QUERY_OPS, evaluate, reference
from .snapshot import SnapshotError, load_snapshot, save_snapshot
from .wire import read_message, write_message

__all__ = ["PlanServer", "ServiceConfig"]


@dataclass
class ServiceConfig:
    """Every knob of one server instance (CLI flags map 1:1 onto this)."""

    # Transport: exactly one of unix_path / (host, port).
    unix_path: str | None = None
    host: str | None = None
    port: int = 0

    # Deadlines and connection bounds.
    default_deadline_ms: int = 2000
    max_deadline_ms: int = 30000
    idle_timeout_s: float = 60.0
    write_timeout_s: float = 10.0
    max_connections: int = 256

    # Admission control (the bounded work queue).
    max_inflight: int = 64
    retry_after_ms: int = 50
    compute_threads: int = 8

    # Result cache.
    cache_size: int = 8192
    cache_shards: int = 8
    cache_ttl_s: float | None = 300.0

    # Circuit breakers (one per cache shard).
    breaker_threshold: int = 5
    breaker_reset_s: float = 1.0

    # Crash-safe persistence.
    snapshot_path: str | None = None
    snapshot_interval_s: float = 30.0
    snapshot_limit: int = 1024

    # Observability: bounded rings + periodic flush (docs/SERVICE.md §5).
    obs: Observability | None = None
    flush_dir: str | None = None
    flush_interval_s: float = 60.0

    # Optional aux HTTP listener (/metrics, /healthz, /statusz); off
    # unless http_host is set.  Always TCP -- Prometheus scrapes TCP --
    # independent of whether the plan transport is unix or TCP.
    http_host: str | None = None
    http_port: int = 0

    # Deterministic fault injection (soak/bench only).
    chaos: ServiceChaos | None = None

    def __post_init__(self) -> None:
        if (self.unix_path is None) == (self.host is None):
            raise ValueError("configure exactly one of unix_path or host/port")
        if self.max_inflight < 1:
            raise ValueError(f"max_inflight must be >= 1, got {self.max_inflight}")
        if self.default_deadline_ms < 1 or self.max_deadline_ms < self.default_deadline_ms:
            raise ValueError(
                f"need 1 <= default_deadline_ms <= max_deadline_ms, got "
                f"{self.default_deadline_ms}/{self.max_deadline_ms}"
            )


@dataclass
class _Counters:
    """Server-lifetime counters surfaced by the ``stats`` op."""

    requests: int = 0
    responses_ok: int = 0
    cache_hits: int = 0
    computed: int = 0
    degraded_stale: int = 0
    degraded_reference: int = 0
    shed_overload: int = 0
    deadline_exceeded: int = 0
    bad_requests: int = 0
    internal_errors: int = 0
    unavailable: int = 0
    breaker_rejections: int = 0
    connections_total: int = 0
    connections_refused: int = 0
    frame_errors: int = 0
    client_stalls_dropped: int = 0
    snapshots_saved: int = 0
    snapshot_failures: int = 0

    def snapshot(self) -> dict:
        return {k: int(v) for k, v in self.__dict__.items()}


class PlanServer:
    """One planning-service instance; see the module docstring."""

    def __init__(self, config: ServiceConfig) -> None:
        self.config = config
        self.counters = _Counters()
        self._cache = ShardedPlanCache(
            "service_results",
            maxsize=config.cache_size,
            shards=config.cache_shards,
            ttl_s=config.cache_ttl_s,
        )
        self._breakers = [
            CircuitBreaker(config.breaker_threshold, config.breaker_reset_s)
            for _ in range(config.cache_shards)
        ]
        self._obs = config.obs if config.obs is not None else ambient()
        self._executor = ThreadPoolExecutor(
            max_workers=config.compute_threads, thread_name_prefix="plan-compute"
        )
        self._server: asyncio.base_events.Server | None = None
        self._tasks: list[asyncio.Task] = []
        self._inflight = 0
        self._connections = 0
        self._request_n = 0
        self._closing = False
        self._started_at = time.monotonic()
        self.warm_started_entries = 0
        self.snapshot_diagnostic: str | None = None
        # The aux HTTP listener (/metrics, /healthz, /statusz); created
        # by start() when config.http_host is set.
        self.http = None

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------

    async def start(self) -> None:
        """Warm-start from the snapshot (if intact), bind the listener,
        and launch the background maintenance tasks."""
        self._warm_start()
        if self.config.unix_path is not None:
            self._server = await asyncio.start_unix_server(
                self._handle_connection, path=self.config.unix_path
            )
        else:
            self._server = await asyncio.start_server(
                self._handle_connection, host=self.config.host, port=self.config.port
            )
        loop_specs = [
            (self._snapshot_loop, self.config.snapshot_path),
            (self._flush_loop, self.config.flush_dir),
            (self._evict_loop, self.config.cache_ttl_s),
        ]
        for factory, enabled in loop_specs:
            if enabled:
                self._tasks.append(asyncio.get_running_loop().create_task(factory()))
        if self.config.http_host is not None:
            from .http import MetricsHttpServer

            self.http = MetricsHttpServer(
                self, self.config.http_host, self.config.http_port
            )
            await self.http.start()

    @property
    def address(self):
        """The bound address: the unix path, or ``(host, port)`` with the
        kernel-assigned port resolved (useful with ``port=0``)."""
        if self.config.unix_path is not None:
            return self.config.unix_path
        assert self._server is not None, "server not started"
        sock = self._server.sockets[0]
        return sock.getsockname()[:2]

    async def serve_forever(self) -> None:
        assert self._server is not None, "call start() first"
        async with self._server:
            await self._server.serve_forever()

    async def stop(self) -> None:
        """Graceful shutdown: stop accepting, cancel maintenance, write a
        final snapshot, release the compute pool."""
        self._closing = True
        if self.http is not None:
            # Drain the scrape surface first so /healthz flips to 503
            # before the plan listener disappears.
            await self.http.stop()
            self.http = None
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
        for task in self._tasks:
            task.cancel()
        for task in self._tasks:
            try:
                await task
            except (asyncio.CancelledError, Exception):
                pass
        self._tasks.clear()
        if self.config.snapshot_path:
            await asyncio.get_running_loop().run_in_executor(None, self._save_snapshot)
        self._executor.shutdown(wait=False, cancel_futures=True)
        if self.config.unix_path and os.path.exists(self.config.unix_path):
            try:
                os.unlink(self.config.unix_path)
            except OSError:
                pass

    # ------------------------------------------------------------------
    # Persistence
    # ------------------------------------------------------------------

    def _warm_start(self) -> None:
        path = self.config.snapshot_path
        if not path or not os.path.exists(path):
            return
        try:
            entries, _meta = load_snapshot(path)
        except SnapshotError as exc:
            # Reject diagnostically and boot cold -- a corrupt snapshot
            # must never warm-start (it could hold torn bytes), and the
            # operator must see why.
            self.snapshot_diagnostic = str(exc)
            self._obs.inc("service.snapshot.rejected")
            print(f"[repro.service] cold start: {exc}", file=sys.stderr)
            return
        for key, value, freq in entries[: self.config.cache_size]:
            self._cache.put(key, value, freq=freq)
        self.warm_started_entries = len(entries[: self.config.cache_size])
        self._obs.inc("service.snapshot.warm_entries", self.warm_started_entries)

    def _save_snapshot(self) -> None:
        path = self.config.snapshot_path
        if not path:
            return
        try:
            entries = self._cache.hot_entries(self.config.snapshot_limit)
            save_snapshot(
                path,
                entries,
                meta={
                    "pid": os.getpid(),
                    "uptime_s": round(time.monotonic() - self._started_at, 3),
                    "entries": len(entries),
                },
            )
            self.counters.snapshots_saved += 1
            self._obs.inc("service.snapshot.saved")
        except Exception as exc:
            self.counters.snapshot_failures += 1
            self.snapshot_diagnostic = f"snapshot save failed: {exc}"
            self._obs.inc("service.snapshot.failed")

    async def _snapshot_loop(self) -> None:
        loop = asyncio.get_running_loop()
        while True:
            await asyncio.sleep(self.config.snapshot_interval_s)
            await loop.run_in_executor(None, self._save_snapshot)

    async def _flush_loop(self) -> None:
        while True:
            await asyncio.sleep(self.config.flush_interval_s)
            obs = self._obs
            if obs.enabled and self.config.flush_dir:
                obs.flush_jsonl(self.config.flush_dir, label="service")

    async def _evict_loop(self) -> None:
        interval = max(1.0, (self.config.cache_ttl_s or 60.0) / 2)
        while True:
            await asyncio.sleep(interval)
            self._cache.evict_expired()
            plancache_mod.evict_expired()

    # ------------------------------------------------------------------
    # Connections
    # ------------------------------------------------------------------

    async def _handle_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        if self._connections >= self.config.max_connections or self._closing:
            self.counters.connections_refused += 1
            try:
                await write_message(
                    writer,
                    error_response(
                        None, OVERLOADED, "connection limit reached",
                        retry_after_ms=self.config.retry_after_ms,
                    ),
                    timeout=self.config.write_timeout_s,
                )
            except (FrameError, ConnectionError, OSError):
                pass
            writer.close()
            return
        self._connections += 1
        self.counters.connections_total += 1
        try:
            await self._connection_loop(reader, writer)
        finally:
            self._connections -= 1
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, OSError):
                pass

    async def _connection_loop(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        while not self._closing:
            try:
                msg = await read_message(reader, timeout=self.config.idle_timeout_s)
            except FrameClosed:
                return
            except FrameTimeout:
                # Stalled/slow client: drop the connection rather than
                # hold a task (and its buffers) hostage.
                self.counters.client_stalls_dropped += 1
                self._obs.inc("service.client_stalls_dropped")
                return
            except (FrameError, ConnectionError, OSError) as exc:
                self.counters.frame_errors += 1
                self._obs.inc("service.frame_errors")
                try:
                    await write_message(
                        writer,
                        error_response(None, "BAD_REQUEST", f"bad frame: {exc}"),
                        timeout=self.config.write_timeout_s,
                    )
                except (FrameError, ConnectionError, OSError):
                    pass
                return  # the byte stream may be out of sync: resynchronize by reconnect
            response = await self._dispatch(msg)
            try:
                await write_message(
                    writer, response, timeout=self.config.write_timeout_s
                )
            except (FrameTimeout, ConnectionError, OSError):
                self.counters.client_stalls_dropped += 1
                self._obs.inc("service.client_stalls_dropped")
                return

    # ------------------------------------------------------------------
    # Request handling
    # ------------------------------------------------------------------

    async def _dispatch(self, msg: dict) -> dict:
        """Turn one message into one response; never raises."""
        t0 = time.perf_counter_ns()
        self.counters.requests += 1
        req_id: int | None = None
        try:
            req = parse_request(msg)
            req_id = req.id
            if req.op == "ping":
                result, source, degraded = {"pong": True, "pid": os.getpid()}, "inline", False
            elif req.op == "stats":
                result, source, degraded = self._stats_result(), "inline", False
            else:
                result, source, degraded = await self._answer_query(req, t0)
            self.counters.responses_ok += 1
            response = ok_response(
                req_id, result, source=source, degraded=degraded,
                server_ms=(time.perf_counter_ns() - t0) / 1e6,
            )
        except ServiceError as exc:
            self._count_error(exc)
            response = error_response(
                req_id, exc.code, exc.message, retry_after_ms=exc.retry_after_ms
            )
        except Exception as exc:  # noqa: BLE001 -- the no-crash boundary
            self.counters.internal_errors += 1
            self._obs.inc("service.internal_errors")
            response = error_response(req_id, INTERNAL, f"{type(exc).__name__}: {exc}")
        self._record_request(msg, response, t0)
        return response

    def _count_error(self, exc: ServiceError) -> None:
        c = self.counters
        if exc.code == OVERLOADED:
            c.shed_overload += 1
        elif exc.code == DEADLINE_EXCEEDED:
            c.deadline_exceeded += 1
        elif exc.code == UNAVAILABLE:
            c.unavailable += 1
        elif exc.code == INTERNAL:
            c.internal_errors += 1
        else:
            c.bad_requests += 1
        self._obs.inc(f"service.errors.{exc.code.lower()}")

    def _deadline_s(self, req) -> float:
        ms = req.deadline_ms if req.deadline_ms is not None else self.config.default_deadline_ms
        return min(ms, self.config.max_deadline_ms) / 1000.0

    async def _answer_query(self, req, t0: int):
        """The data-plane path: cache, breaker, admission, compute."""
        if req.op not in QUERY_OPS:  # defensive; parse_request screened ops
            raise RequestError(f"unknown op {req.op!r}")
        key = canonical_key(req.op, req.params)
        deadline_s = self._deadline_s(req)
        self._request_n += 1
        request_n = self._request_n

        # 1. Fresh cache hit: served even under overload (no compute).
        found, value = self._cache.peek(key, allow_stale=False, touch=True)
        if found:
            self.counters.cache_hits += 1
            return value, "cache", False

        # 2. Tripped shard: degrade rather than hammer a failing path.
        breaker = self._breakers[hash(key) % len(self._breakers)]
        if not breaker.allow():
            self.counters.breaker_rejections += 1
            self._obs.inc("service.breaker_rejections")
            return await self._degrade(req, key, deadline_s, "breaker open")

        # 3. Admission control: bounded in-flight work, explicit shed.
        if self._inflight >= self.config.max_inflight:
            found, value = self._cache.peek(key, allow_stale=True)
            if found:
                self.counters.degraded_stale += 1
                self._obs.inc("service.degraded_stale")
                return value, "stale-cache", True
            raise ServiceError(
                OVERLOADED,
                f"{self._inflight} requests in flight (max {self.config.max_inflight})",
                retry_after_ms=self.config.retry_after_ms,
            )

        # 4. Compute, bounded by the request deadline.
        try:
            value, computed = await self._run_compute(
                lambda: self._compute_cached(key, req.op, req.params, request_n),
                deadline_s,
            )
        except asyncio.TimeoutError:
            raise ServiceError(
                DEADLINE_EXCEEDED,
                f"deadline of {int(deadline_s * 1000)}ms exceeded in {req.op}",
            ) from None
        except RequestError:
            raise  # malformed params: deterministic, not a shard failure
        except Exception as exc:
            breaker.record_failure()
            self._obs.inc("service.compute_failures")
            degraded = await self._try_stale(key)
            if degraded is not None:
                return degraded
            raise ServiceError(
                INTERNAL, f"compute failed: {type(exc).__name__}: {exc}"
            ) from None
        breaker.record_success()
        if computed:
            self.counters.computed += 1
            return value, "computed", False
        self.counters.cache_hits += 1
        return value, "cache", False

    async def _run_compute(self, fn, deadline_s: float):
        """Run ``fn`` on the compute pool under the deadline.  The
        admission slot is held until the *thread* finishes -- a compute
        that outlives its deadline still occupies capacity, which is
        exactly the backpressure that sheds the flood behind it."""
        loop = asyncio.get_running_loop()
        self._inflight += 1
        self._obs.set_gauge("service.inflight", self._inflight)
        future = self._executor.submit(fn)

        def _release(_f) -> None:
            try:
                loop.call_soon_threadsafe(self._release_slot)
            except RuntimeError:
                self._inflight -= 1  # loop already closed at shutdown

        future.add_done_callback(_release)
        return await asyncio.wait_for(
            asyncio.wrap_future(future), timeout=deadline_s
        )

    def _release_slot(self) -> None:
        self._inflight -= 1
        self._obs.set_gauge("service.inflight", self._inflight)

    def _compute_cached(self, key: str, op: str, params: dict, request_n: int):
        """Worker-thread body: single-flight compute through the result
        cache (with chaos perturbation when configured)."""
        computed = False

        def compute():
            nonlocal computed
            computed = True
            if self.config.chaos is not None:
                self.config.chaos.perturb_compute(request_n)
            return evaluate(op, params)

        p = params.get("p")
        ps = (p,) if isinstance(p, int) and not isinstance(p, bool) else ()
        value = self._cache.get_or_compute(key, compute, ps=ps)
        return value, computed

    async def _try_stale(self, key: str):
        found, value = self._cache.peek(key, allow_stale=True)
        if found:
            self.counters.degraded_stale += 1
            self._obs.inc("service.degraded_stale")
            return value, "stale-cache", True
        return None

    async def _degrade(self, req, key: str, deadline_s: float, why: str):
        """The degradation ladder below the normal path: stale cache
        entry, then reference-path compute, then UNAVAILABLE.  Both
        successful rungs are tagged degraded -- and both are
        bit-identical to fresh computation, because every query is a
        pure function of its parameters."""
        degraded = await self._try_stale(key)
        if degraded is not None:
            return degraded
        try:
            value, _ = await self._run_compute(
                lambda: (reference(req.op, req.params), True), deadline_s
            )
        except asyncio.TimeoutError:
            raise ServiceError(
                DEADLINE_EXCEEDED,
                f"deadline of {int(deadline_s * 1000)}ms exceeded on the "
                f"degraded reference path ({why})",
            ) from None
        except RequestError:
            raise
        except Exception as exc:
            raise ServiceError(
                UNAVAILABLE,
                f"{why}; no stale entry; reference path failed: "
                f"{type(exc).__name__}: {exc}",
                retry_after_ms=self.config.retry_after_ms,
            ) from None
        self.counters.degraded_reference += 1
        self._obs.inc("service.degraded_reference")
        return value, "reference", True

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    def _stats_result(self) -> dict:
        chaos = self.config.chaos
        return {
            "uptime_s": round(time.monotonic() - self._started_at, 3),
            "pid": os.getpid(),
            "inflight": self._inflight,
            "connections": self._connections,
            "counters": self.counters.snapshot(),
            "cache": self._cache.stats(),
            "plan_caches": plancache_mod.cache_stats(),
            "breakers": [b.snapshot() for b in self._breakers],
            "warm_started_entries": self.warm_started_entries,
            "snapshot_diagnostic": self.snapshot_diagnostic,
            "chaos_injected": dict(chaos.injected) if chaos is not None else None,
        }

    def _record_request(self, msg: dict, response: dict, t0: int) -> None:
        obs = self._obs
        if not obs.enabled:
            return
        dur = time.perf_counter_ns() - t0
        obs.inc("service.requests")
        obs.observe("service.request_ns", dur)
        # Direct trace append: concurrent request tasks interleave, so
        # the nesting span stack (LIFO within one logical thread) does
        # not apply here.
        obs.trace.add(
            SpanRecord(
                "service.request",
                None,
                t0,
                dur,
                0,
                (
                    ("op", msg.get("op")),
                    ("ok", response.get("ok")),
                    ("source", response.get("source")),
                    ("degraded", response.get("degraded", False)),
                ),
            )
        )
