"""The blocking planning-service client: deadlines, budgeted retries.

:class:`PlanClient` speaks the framed-JSON protocol over a unix or TCP
socket, one request/response pair at a time.  Its retry discipline is
the client half of the service's robustness contract:

* every attempt carries a deadline (propagated to the server in
  ``deadline_ms`` and enforced locally on the socket read);
* retries happen **only** for retryable failures -- ``OVERLOADED`` /
  ``UNAVAILABLE`` / ``DEADLINE_EXCEEDED`` responses and transport
  errors.  All query ops are pure functions (no side effects), so
  retrying a timed-out request is always safe; ``BAD_REQUEST`` and
  ``INTERNAL`` are deterministic and never retried;
* the retry pacing is a deterministic capped exponential
  :class:`~repro.machine.mp.timeouts.Backoff` (no jitter -- soak
  failures must replay exactly), floored by any ``retry_after_ms`` the
  server attached to its shed response;
* total retry volume is bounded by a :class:`RetryBudget` token bucket
  shared across the client's lifetime, so a degraded server sees the
  client's retry traffic *decay* instead of amplifying the overload --
  the retry storm is structurally impossible, not just discouraged.

After any transport error the byte stream may be desynchronized (e.g. a
response that arrives after our read deadline), so the client always
reconnects before retrying.
"""

from __future__ import annotations

import socket
import time
from dataclasses import dataclass

from ..machine.mp.framing import FrameError
from ..machine.mp.timeouts import Backoff, Deadline
from .protocol import ServiceError
from .wire import recv_message, send_message

__all__ = ["PlanClient", "RetryBudget"]


class RetryBudget:
    """A token bucket bounding retries (not first attempts) over time.

    ``capacity`` tokens, refilled at ``refill_per_s``; each retry spends
    one.  An exhausted budget turns would-be retries into immediate
    failures -- under sustained overload the client degrades to
    one-attempt behaviour instead of multiplying load.
    """

    def __init__(
        self,
        capacity: float = 10.0,
        refill_per_s: float = 1.0,
        clock=time.monotonic,
    ) -> None:
        if capacity <= 0 or refill_per_s < 0:
            raise ValueError(
                f"need capacity > 0 and refill_per_s >= 0, got "
                f"{capacity}/{refill_per_s}"
            )
        self.capacity = float(capacity)
        self.refill_per_s = float(refill_per_s)
        self._clock = clock
        self._tokens = float(capacity)
        self._last = clock()
        self.spent = 0
        self.denied = 0

    def _refill(self) -> None:
        now = self._clock()
        self._tokens = min(
            self.capacity, self._tokens + (now - self._last) * self.refill_per_s
        )
        self._last = now

    def try_spend(self) -> bool:
        """Take one token if available; ``False`` means do not retry."""
        self._refill()
        if self._tokens >= 1.0:
            self._tokens -= 1.0
            self.spent += 1
            return True
        self.denied += 1
        return False


@dataclass
class _ClientCounters:
    requests: int = 0
    retries: int = 0
    reconnects: int = 0
    degraded_responses: int = 0
    retries_denied: int = 0


class PlanClient:
    """Blocking client for one planning server.

    ``address`` is a unix-socket path (str) or a ``(host, port)`` pair.
    Usable as a context manager; connects lazily on first call.
    """

    def __init__(
        self,
        address,
        *,
        connect_timeout_s: float = 5.0,
        default_deadline_ms: int = 2000,
        max_retries: int = 3,
        backoff: Backoff | None = None,
        retry_budget: RetryBudget | None = None,
    ) -> None:
        if default_deadline_ms < 1:
            raise ValueError(
                f"default_deadline_ms must be >= 1, got {default_deadline_ms}"
            )
        if max_retries < 0:
            raise ValueError(f"max_retries must be >= 0, got {max_retries}")
        self.address = address
        self.connect_timeout_s = connect_timeout_s
        self.default_deadline_ms = default_deadline_ms
        self.max_retries = max_retries
        self.backoff = backoff if backoff is not None else Backoff(
            initial=0.02, factor=2.0, ceiling=1.0
        )
        self.retry_budget = (
            retry_budget if retry_budget is not None else RetryBudget()
        )
        self.counters = _ClientCounters()
        self._sock: socket.socket | None = None
        self._next_id = 0

    # -- connection management ----------------------------------------

    def connect(self) -> None:
        if self._sock is not None:
            return
        if isinstance(self.address, str):
            sock = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
        else:
            sock = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        sock.settimeout(self.connect_timeout_s)
        try:
            sock.connect(
                self.address if isinstance(self.address, str) else tuple(self.address)
            )
        except OSError:
            sock.close()
            raise
        self._sock = sock

    def close(self) -> None:
        if self._sock is not None:
            try:
                self._sock.close()
            finally:
                self._sock = None

    def __enter__(self) -> "PlanClient":
        self.connect()
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    # -- the request path ---------------------------------------------

    def call(self, op: str, params: dict | None = None, deadline_ms: int | None = None) -> dict:
        """Send one request, retrying retryable failures within the
        deadline/budget; returns the full ``ok`` response dict (with
        ``result``, ``source``, ``degraded``) or raises
        :class:`ServiceError` / the final transport error."""
        deadline_ms = deadline_ms if deadline_ms is not None else self.default_deadline_ms
        self.counters.requests += 1
        self.backoff.reset()
        attempt = 0
        while True:
            try:
                return self._attempt(op, params or {}, deadline_ms)
            except ServiceError as exc:
                if not exc.retryable or not self._may_retry(attempt):
                    raise
                self._pause(exc.retry_after_ms)
            except (FrameError, ConnectionError, OSError) as exc:
                # Transport failure: the stream may hold a late response,
                # so resynchronize by reconnecting before any retry.
                self.close()
                if not self._may_retry(attempt):
                    raise
                self.counters.reconnects += 1
                self._pause(None)
            attempt += 1
            self.counters.retries += 1

    def _may_retry(self, attempt: int) -> bool:
        if attempt >= self.max_retries:
            return False
        if not self.retry_budget.try_spend():
            self.counters.retries_denied += 1
            return False
        return True

    def _pause(self, retry_after_ms: int | None) -> None:
        """Sleep the longer of the server's retry-after hint and the
        local backoff schedule (which still advances)."""
        planned = self.backoff.peek()
        self.backoff.sleep()
        if retry_after_ms is not None and retry_after_ms / 1000.0 > planned:
            time.sleep(retry_after_ms / 1000.0 - planned)

    def _attempt(self, op: str, params: dict, deadline_ms: int) -> dict:
        self.connect()
        assert self._sock is not None
        self._next_id += 1
        req_id = self._next_id
        request = {
            "id": req_id,
            "op": op,
            "params": params,
            "deadline_ms": deadline_ms,
        }
        # Local read bound: the server's deadline plus slack for the
        # network and response serialization.  No wait without a deadline.
        deadline = Deadline(deadline_ms / 1000.0 + 1.0)
        self._sock.settimeout(max(deadline.remaining(), 1e-4))
        send_message(self._sock, request)
        response = recv_message(self._sock, deadline)
        if response.get("id") not in (req_id, None):
            # Protocol is strict request/response in order; an id
            # mismatch means the stream is desynchronized.
            self.close()
            raise FrameError(
                f"response id {response.get('id')!r} does not match request {req_id}"
            )
        if response.get("ok"):
            if response.get("degraded"):
                self.counters.degraded_responses += 1
            return response
        error = response.get("error") or {}
        raise ServiceError(
            str(error.get("code", "INTERNAL")),
            str(error.get("message", "malformed error response")),
            retry_after_ms=response.get("retry_after_ms"),
        )

    # -- conveniences --------------------------------------------------

    def ping(self, deadline_ms: int | None = None) -> dict:
        return self.call("ping", deadline_ms=deadline_ms)["result"]

    def stats(self, deadline_ms: int | None = None) -> dict:
        return self.call("stats", deadline_ms=deadline_ms)["result"]

    def plan(self, deadline_ms: int | None = None, **params) -> dict:
        return self.call("plan", params, deadline_ms=deadline_ms)

    def localize(self, deadline_ms: int | None = None, **params) -> dict:
        return self.call("localize", params, deadline_ms=deadline_ms)

    def schedule(self, params: dict, deadline_ms: int | None = None) -> dict:
        return self.call("schedule", params, deadline_ms=deadline_ms)
