"""Auxiliary HTTP listener for the planning service: ``/metrics``,
``/healthz``, ``/statusz``.

The plan protocol itself stays on the CRC-framed transport
(:mod:`repro.service.wire`); this module adds the small, read-only
HTTP/1.1 surface standard tooling expects -- a Prometheus scrape
target, a load-balancer health probe, and a human-readable status page
-- using only ``asyncio`` and the stdlib (no web framework, no client
library).

Endpoints (GET only; anything else is 405, unknown paths 404):

* ``/metrics`` -- Prometheus text exposition v0.0.4
  (:func:`repro.obs.promexport.prometheus_text`) of the server's obs
  registry plus its lifetime request counters
  (``repro_plan_server_*_total``), result-cache and plan-cache stats
  (labeled gauges), and liveness gauges (uptime, inflight,
  connections).
* ``/healthz`` -- ``200 ok`` while serving, ``503 draining`` once
  shutdown has begun (so a scraping LB stops routing before the plan
  listener closes).
* ``/statusz`` -- the full ``stats`` op result as JSON (the same dict a
  plan client gets from the ``stats`` query).

Lifecycle mirrors the main listener: :meth:`MetricsHttpServer.stop`
closes the listener first, then *drains* in-flight request handlers
(bounded wait, then cancellation) -- a scrape racing shutdown gets its
response or a clean connection close, never a half-written frame.
"""

from __future__ import annotations

import asyncio
import json
from typing import TYPE_CHECKING

from ..obs.promexport import prometheus_text

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (server -> http)
    from .server import PlanServer

__all__ = ["MetricsHttpServer"]

#: Maximum request head (request line + headers) we will buffer.
_MAX_REQUEST_BYTES = 8192

#: Per-request read deadline: a scraper sends its GET immediately.
_READ_TIMEOUT_S = 5.0

_STATUS_TEXT = {
    200: "OK",
    400: "Bad Request",
    404: "Not Found",
    405: "Method Not Allowed",
    503: "Service Unavailable",
}


class MetricsHttpServer:
    """The aux HTTP listener; owned and lifecycled by a
    :class:`~repro.service.server.PlanServer`."""

    def __init__(
        self, plan_server: "PlanServer", host: str = "127.0.0.1", port: int = 0
    ) -> None:
        self.plan_server = plan_server
        self.host = host
        self.port = port
        self._server: asyncio.base_events.Server | None = None
        self._handlers: set[asyncio.Task] = set()
        self._closing = False

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------

    async def start(self) -> None:
        self._server = await asyncio.start_server(
            self._handle, host=self.host, port=self.port
        )

    @property
    def address(self) -> tuple[str, int]:
        """``(host, port)`` with a kernel-assigned port resolved."""
        assert self._server is not None, "http server not started"
        return self._server.sockets[0].getsockname()[:2]

    async def stop(self, drain_timeout_s: float = 2.0) -> None:
        """Graceful drain: stop accepting, give in-flight scrapes a
        bounded window to finish, then cancel stragglers."""
        self._closing = True
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
        if self._handlers:
            done, pending = await asyncio.wait(
                self._handlers, timeout=drain_timeout_s
            )
            for task in pending:
                task.cancel()
            for task in pending:
                try:
                    await task
                except (asyncio.CancelledError, Exception):
                    pass
        self._handlers.clear()

    # ------------------------------------------------------------------
    # Request handling
    # ------------------------------------------------------------------

    async def _handle(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        task = asyncio.current_task()
        if task is not None:
            self._handlers.add(task)
            task.add_done_callback(self._handlers.discard)
        try:
            try:
                head = await asyncio.wait_for(
                    reader.readuntil(b"\r\n\r\n"), timeout=_READ_TIMEOUT_S
                )
            except asyncio.LimitOverrunError:
                await self._respond(writer, 400, "request head too large\n")
                return
            except (asyncio.IncompleteReadError, asyncio.TimeoutError):
                return  # client went away or never sent a request
            if len(head) > _MAX_REQUEST_BYTES:
                await self._respond(writer, 400, "request head too large\n")
                return
            request_line = head.split(b"\r\n", 1)[0].decode("latin-1")
            parts = request_line.split()
            if len(parts) != 3 or not parts[2].startswith("HTTP/"):
                await self._respond(writer, 400, "malformed request line\n")
                return
            method, target, _version = parts
            if method != "GET":
                await self._respond(
                    writer, 405, "only GET is supported\n", allow="GET"
                )
                return
            path = target.split("?", 1)[0]
            if path == "/metrics":
                await self._respond(
                    writer,
                    200,
                    self._render_metrics(),
                    content_type="text/plain; version=0.0.4; charset=utf-8",
                )
            elif path == "/healthz":
                if self._closing or self.plan_server._closing:
                    await self._respond(writer, 503, "draining\n")
                else:
                    await self._respond(writer, 200, "ok\n")
            elif path == "/statusz":
                body = json.dumps(
                    self.plan_server._stats_result(), indent=2, sort_keys=True,
                    default=str,
                )
                await self._respond(
                    writer, 200, body + "\n", content_type="application/json"
                )
            else:
                await self._respond(writer, 404, f"no such endpoint: {path}\n")
        except (ConnectionError, OSError):
            pass  # peer reset mid-response; nothing to clean up
        finally:
            try:
                writer.close()
                await writer.wait_closed()
            except (ConnectionError, OSError):
                pass

    async def _respond(
        self,
        writer: asyncio.StreamWriter,
        status: int,
        body: str,
        *,
        content_type: str = "text/plain; charset=utf-8",
        allow: str | None = None,
    ) -> None:
        payload = body.encode("utf-8")
        headers = [
            f"HTTP/1.1 {status} {_STATUS_TEXT.get(status, 'Unknown')}",
            f"Content-Type: {content_type}",
            f"Content-Length: {len(payload)}",
            "Connection: close",
        ]
        if allow is not None:
            headers.append(f"Allow: {allow}")
        writer.write("\r\n".join(headers).encode("latin-1") + b"\r\n\r\n" + payload)
        await writer.drain()

    # ------------------------------------------------------------------
    # /metrics assembly
    # ------------------------------------------------------------------

    def _render_metrics(self) -> str:
        server = self.plan_server
        stats = server._stats_result()
        extra: list[tuple[str, dict | None, object, str]] = []
        for name, value in sorted(stats["counters"].items()):
            extra.append((f"plan_server.{name}", None, value, "counter"))
        extra.append(("plan_server.uptime_seconds", None, stats["uptime_s"], "gauge"))
        extra.append(("plan_server.inflight", None, stats["inflight"], "gauge"))
        extra.append(
            ("plan_server.connections", None, stats["connections"], "gauge")
        )
        cache = stats.get("cache", {})
        for key, value in sorted(cache.items()):
            if isinstance(value, (int, float)) and not isinstance(value, bool):
                extra.append(
                    (f"plan_server.cache.{key}", None, value, "gauge")
                )
        for cache_name, st in sorted(stats.get("plan_caches", {}).items()):
            for key, value in sorted(st.items()):
                if isinstance(value, (int, float)) and not isinstance(value, bool):
                    extra.append(
                        (f"plan_cache.{key}", {"cache": cache_name}, value, "gauge")
                    )
        snapshot = server._obs.metrics.snapshot()
        return prometheus_text(snapshot, extra=extra)
