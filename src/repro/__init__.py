"""repro: lattice-based memory access sequences for HPF cyclic(k) arrays.

A full reproduction of *Kennedy, Nedeljkovic & Sethi, "A Linear-Time
Algorithm for Computing the Memory Access Sequence in Data-Parallel
Programs"* (PPoPP 1995), packaged as the runtime library the paper's
conclusion calls for, plus every substrate its evaluation depends on:

* :mod:`repro.core` -- the O(k + min(log s, log p)) lattice algorithm,
  the offset-indexed tables, the table-free R/L generator, and the
  baselines it is compared against (Chatterjee et al. sorting,
  Hiranandani et al. special case, brute-force oracle);
* :mod:`repro.distribution` -- HPF data mapping: triplet sections,
  cyclic(k) layout algebra, BLOCK/CYCLIC/CYCLIC(k) formats, affine
  alignments with the two-application localization scheme, and
  multidimensional distributed-array descriptors;
* :mod:`repro.machine` -- a deterministic SPMD virtual machine standing
  in for the paper's iPSC/860 (per-rank memories, message passing,
  collectives, instrumentation);
* :mod:`repro.runtime` -- access plans, the four Figure-8 node-code
  shapes (plus a vectorized one), communication-set generation, and
  statement execution;
* :mod:`repro.lang` -- a mini-HPF front end (ALIGN/DISTRIBUTE
  directives, array assignments) compiled onto the runtime;
* :mod:`repro.viz` -- ASCII reproductions of the paper's figures;
* :mod:`repro.bench` -- harnesses regenerating every table and figure
  of the evaluation (see EXPERIMENTS.md).

Quickstart::

    from repro import compute_access_table
    table = compute_access_table(p=4, k=8, l=4, s=9, m=1)
    table.gaps          # (3, 12, 15, 12, 3, 12, 3, 12) -- the paper's AM
    table.start         # 13

"""

from .core import (
    AccessTable,
    LatticePoint,
    OffsetTables,
    RLBasis,
    RLCursor,
    SectionLattice,
    compute_access_table,
    compute_offset_tables,
    compute_rl_basis,
    iter_global_indices,
    iter_local_addresses,
    last_location,
    local_allocation_size,
    local_count,
    owner_histogram,
    section_length,
    start_location,
)
from .distribution import (
    Alignment,
    AxisMap,
    Block,
    Collapsed,
    Cyclic,
    CyclicK,
    CyclicLayout,
    DistributedArray,
    ProcessorGrid,
    RegularSection,
    Replicated,
    Template,
    localize_section,
)
from .lang import compile_source
from .machine import VirtualMachine
from .runtime import (
    cache_stats,
    cached_comm_schedule,
    clear_plan_caches,
    collect,
    compute_comm_schedule,
    distribute,
    execute_copy,
    execute_fill,
    make_plan,
)

__version__ = "1.0.0"

__all__ = [
    "__version__",
    # core
    "AccessTable",
    "compute_access_table",
    "start_location",
    "OffsetTables",
    "compute_offset_tables",
    "LatticePoint",
    "RLBasis",
    "SectionLattice",
    "compute_rl_basis",
    "RLCursor",
    "iter_global_indices",
    "iter_local_addresses",
    "local_count",
    "last_location",
    "owner_histogram",
    "local_allocation_size",
    "section_length",
    # distribution
    "RegularSection",
    "CyclicLayout",
    "Alignment",
    "AxisMap",
    "DistributedArray",
    "ProcessorGrid",
    "Template",
    "Block",
    "Cyclic",
    "CyclicK",
    "Collapsed",
    "Replicated",
    "localize_section",
    # machine / runtime / lang
    "VirtualMachine",
    "make_plan",
    "compute_comm_schedule",
    "cached_comm_schedule",
    "cache_stats",
    "clear_plan_caches",
    "distribute",
    "collect",
    "execute_fill",
    "execute_copy",
    "compile_source",
]
