"""Prometheus text-format exposition of the obs metrics (stdlib-only).

Renders a :meth:`repro.obs.metrics.MetricsRegistry.snapshot` (plus any
caller-supplied extra samples, e.g. the plan server's request counters)
as Prometheus text exposition format v0.0.4 -- the format every
standard scraper speaks.  No client library involved: the format is a
few lines of string handling, and this repository adds no dependencies.

Conventions:

* dotted metric names are sanitized and prefixed: ``net.bytes_sent``
  becomes ``repro_net_bytes_sent_total`` (counters get the ``_total``
  suffix Prometheus naming rules require);
* histograms are converted from the registry's per-bucket counts to
  Prometheus's *cumulative* ``_bucket{le="..."}`` series, closed by the
  mandatory ``le="+Inf"`` bucket plus ``_sum`` and ``_count``;
* a histogram with **zero observations** emits only its ``_count 0``
  and ``_sum 0`` samples -- no misleading all-zero bucket rows (the
  same guard :func:`repro.viz.tables.render_metrics` applies).

:func:`parse_prometheus_text` is the line-format validator the tests
and the CI ``profile`` leg use to assert a live scrape parses: it
checks ``# HELP`` / ``# TYPE`` comment shape and sample-line grammar,
returning ``{name{labels}: value}`` and raising :class:`ValueError`
with the offending line otherwise.
"""

from __future__ import annotations

import math
import re
from typing import Any, Iterable

__all__ = ["parse_prometheus_text", "prometheus_text", "sanitize_metric_name"]

_INVALID_CHARS = re.compile(r"[^a-zA-Z0-9_:]")

#: Sample line grammar: name, optional {labels}, value, optional timestamp.
_SAMPLE_RE = re.compile(
    r"^(?P<name>[a-zA-Z_:][a-zA-Z0-9_:]*)"
    r"(?P<labels>\{[^}]*\})?"
    r" (?P<value>[-+]?(?:[0-9]*\.?[0-9]+(?:[eE][-+]?[0-9]+)?|Inf|NaN))"
    r"(?: [-+]?[0-9]+)?$"
)

_LABEL_RE = re.compile(
    r'^[a-zA-Z_][a-zA-Z0-9_]*="(?:[^"\\]|\\["\\n])*"$'
)


def sanitize_metric_name(name: str, prefix: str = "repro_") -> str:
    """Dotted obs name -> legal Prometheus metric name."""
    cleaned = _INVALID_CHARS.sub("_", name)
    if not cleaned or not (cleaned[0].isalpha() or cleaned[0] in "_:"):
        cleaned = "_" + cleaned
    return prefix + cleaned


def _fmt(value: Any) -> str:
    if isinstance(value, bool):
        return "1" if value else "0"
    if isinstance(value, int):
        return str(value)
    value = float(value)
    if math.isinf(value):
        return "+Inf" if value > 0 else "-Inf"
    if math.isnan(value):
        return "NaN"
    return repr(value)


def _labels(labels: dict | None) -> str:
    if not labels:
        return ""
    inner = ",".join(
        f'{key}="{str(val).replace(chr(92), chr(92) * 2).replace(chr(34), chr(92) + chr(34))}"'
        for key, val in sorted(labels.items())
    )
    return "{" + inner + "}"


def prometheus_text(
    snapshot: dict | None = None,
    *,
    prefix: str = "repro_",
    extra: Iterable[tuple[str, dict | None, Any, str]] = (),
) -> str:
    """Render a metrics snapshot (and extra samples) as exposition text.

    ``snapshot`` is :meth:`MetricsRegistry.snapshot`-shaped
    (``{"counters": .., "gauges": .., "histograms": ..}``); ``extra`` is
    an iterable of ``(name, labels_or_None, value, kind)`` with ``kind``
    in ``{"counter", "gauge"}`` for samples that live outside the
    registry (server counters, cache stats, uptime).
    """
    lines: list[str] = []
    snapshot = snapshot or {}

    for name, value in sorted(snapshot.get("counters", {}).items()):
        metric = sanitize_metric_name(name, prefix) + "_total"
        lines.append(f"# HELP {metric} Counter {name} from the obs registry.")
        lines.append(f"# TYPE {metric} counter")
        lines.append(f"{metric} {_fmt(value)}")

    for name, value in sorted(snapshot.get("gauges", {}).items()):
        metric = sanitize_metric_name(name, prefix)
        lines.append(f"# HELP {metric} Gauge {name} from the obs registry.")
        lines.append(f"# TYPE {metric} gauge")
        lines.append(f"{metric} {_fmt(value)}")

    for name, hist in sorted(snapshot.get("histograms", {}).items()):
        metric = sanitize_metric_name(name, prefix)
        lines.append(f"# HELP {metric} Histogram {name} from the obs registry.")
        lines.append(f"# TYPE {metric} histogram")
        count = hist.get("count", 0)
        if count > 0:
            # The registry stores per-bucket counts (<= bound each, one
            # overflow slot); Prometheus buckets are cumulative.
            cumulative = 0
            for bound, bucket_count in zip(hist["buckets"], hist["counts"]):
                cumulative += bucket_count
                lines.append(
                    f'{metric}_bucket{{le="{_fmt(bound)}"}} {cumulative}'
                )
            lines.append(f'{metric}_bucket{{le="+Inf"}} {count}')
        lines.append(f"{metric}_sum {_fmt(hist.get('total', 0))}")
        lines.append(f"{metric}_count {count}")

    grouped: dict[str, list[tuple[dict | None, Any]]] = {}
    kinds: dict[str, str] = {}
    for name, labels, value, kind in extra:
        if kind not in ("counter", "gauge"):
            raise ValueError(f"extra sample {name!r}: kind must be counter|gauge")
        metric = sanitize_metric_name(name, prefix)
        if kind == "counter":
            metric += "_total"
        grouped.setdefault(metric, []).append((labels, value))
        kinds[metric] = kind
    for metric in sorted(grouped):
        lines.append(f"# TYPE {metric} {kinds[metric]}")
        for labels, value in grouped[metric]:
            lines.append(f"{metric}{_labels(labels)} {_fmt(value)}")

    return "\n".join(lines) + "\n"


def parse_prometheus_text(text: str) -> dict[str, float]:
    """Validate exposition text line by line; return ``{series: value}``.

    ``series`` keys include the label set verbatim
    (``repro_plan_cache_hits_total{cache="plan"}``).  Raises
    :class:`ValueError` naming the first malformed line -- this is the
    scrape validator the CI profile leg runs against a live server.
    """
    samples: dict[str, float] = {}
    for lineno, line in enumerate(text.splitlines(), start=1):
        if not line.strip():
            continue
        if line.startswith("#"):
            parts = line.split(None, 3)
            if len(parts) < 3 or parts[1] not in ("HELP", "TYPE"):
                raise ValueError(
                    f"line {lineno}: malformed comment (expected "
                    f"'# HELP name ...' or '# TYPE name kind'): {line!r}"
                )
            if parts[1] == "TYPE" and (
                len(parts) < 4
                or parts[3] not in ("counter", "gauge", "histogram", "summary", "untyped")
            ):
                raise ValueError(f"line {lineno}: bad metric type: {line!r}")
            continue
        match = _SAMPLE_RE.match(line)
        if match is None:
            raise ValueError(f"line {lineno}: malformed sample: {line!r}")
        labels = match.group("labels")
        if labels:
            body = labels[1:-1].strip()
            if body:
                for pair in _split_labels(body):
                    if not _LABEL_RE.match(pair.strip()):
                        raise ValueError(
                            f"line {lineno}: malformed label {pair!r}: {line!r}"
                        )
        key = match.group("name") + (labels or "")
        samples[key] = float(match.group("value").replace("Inf", "inf"))
    return samples


def _split_labels(body: str) -> list[str]:
    """Split ``a="x",b="y"`` on commas outside quoted values."""
    parts: list[str] = []
    current: list[str] = []
    in_quotes = False
    escaped = False
    for ch in body:
        if escaped:
            current.append(ch)
            escaped = False
            continue
        if ch == "\\":
            current.append(ch)
            escaped = True
            continue
        if ch == '"':
            in_quotes = not in_quotes
        if ch == "," and not in_quotes:
            parts.append("".join(current))
            current = []
            continue
        current.append(ch)
    if current:
        parts.append("".join(current))
    return parts
