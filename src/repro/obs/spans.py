"""Nestable low-overhead spans and the in-memory trace/event stores.

Two stores live here, both bounded and both pure data:

* :class:`TraceBuffer` -- the global append-only ring of
  :class:`SpanRecord` entries (timed spans and zero-duration instants)
  that :mod:`repro.obs.export` turns into Chrome trace-event JSON and
  JSON-lines.  Every record carries a monotonic ``ts_ns`` start, a
  ``dur_ns`` duration (``None`` for instants), the rank it concerns
  (``None`` = the host/driver), its nesting ``depth``, and a tuple of
  attribute pairs.

* :class:`EventLog` -- per-rank bounded rings of terse
  :class:`EventRecord` machine events (sends, deliveries, drops,
  injected faults, audit verdicts, repairs).  This is the store the
  flight recorder (:class:`repro.machine.trace.FlightRecorder`) is a
  view over; it can be enabled independently of span tracing so a
  post-mortem ring is available even when full tracing is off.

Timing uses ``time.perf_counter_ns`` (monotonic, ns resolution); the
clock is injectable for tests.  Neither store allocates anything on the
disabled path -- the enabled checks live in
:class:`repro.obs.Observability`.
"""

from __future__ import annotations

import time
from collections import deque
from dataclasses import dataclass
from typing import Callable

__all__ = [
    "EventLog",
    "EventRecord",
    "SpanRecord",
    "TraceBuffer",
    "monotonic_ns",
]

#: The span clock: monotonic nanoseconds.
monotonic_ns: Callable[[], int] = time.perf_counter_ns


@dataclass(frozen=True, slots=True)
class SpanRecord:
    """One finished span (``dur_ns`` set) or instant (``dur_ns`` None)."""

    name: str
    rank: int | None  # None = host/driver work outside any rank
    ts_ns: int  # monotonic start timestamp
    dur_ns: int | None  # None for instant events
    depth: int  # nesting depth at emission (0 = top level)
    attrs: tuple[tuple[str, object], ...] = ()

    @property
    def is_instant(self) -> bool:
        return self.dur_ns is None

    def attrs_dict(self) -> dict:
        return dict(self.attrs)


class TraceBuffer:
    """Bounded global ring of :class:`SpanRecord` entries.

    Appends are O(1); when the ring is full the oldest record is evicted
    and counted in :attr:`dropped` (bounded-buffer honesty, as with the
    flight recorder).  Records are kept in *completion* order -- a
    parent span completes after its children -- so exporters re-sort by
    ``ts_ns`` where formats require it.
    """

    def __init__(self, capacity: int = 65536) -> None:
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        self.capacity = capacity
        self.dropped = 0
        self._records: deque[SpanRecord] = deque(maxlen=capacity)

    def __len__(self) -> int:
        return len(self._records)

    def add(self, record: SpanRecord) -> None:
        if len(self._records) == self.capacity:
            self.dropped += 1
        self._records.append(record)

    def records(self) -> list[SpanRecord]:
        """Snapshot of the buffer contents (completion order)."""
        return list(self._records)

    def spans(self, name: str | None = None) -> list[SpanRecord]:
        """Timed spans only, optionally filtered by name."""
        return [
            r for r in self._records
            if not r.is_instant and (name is None or r.name == name)
        ]

    def instants(self, name: str | None = None) -> list[SpanRecord]:
        """Instant events only, optionally filtered by name."""
        return [
            r for r in self._records
            if r.is_instant and (name is None or r.name == name)
        ]

    def clear(self) -> None:
        self._records.clear()
        self.dropped = 0


@dataclass(frozen=True, slots=True)
class EventRecord:
    """One entry in a rank's machine-event ring."""

    superstep: int
    kind: str  # send/deliver/drop/quarantine, a fault kind, audit, repair
    detail: str


class EventLog:
    """Per-rank bounded rings of machine events.

    The storage behind the flight recorder: the machine layers
    (:mod:`repro.machine.network`, :mod:`repro.machine.vm`) append here
    through :meth:`repro.obs.Observability.machine_event`, and
    :class:`repro.machine.trace.FlightRecorder` reads the rings back out
    -- there is exactly one copy of each event.  ``enabled`` gates
    recording so the rings cost nothing unless tracing is on or a
    recorder is attached.
    """

    def __init__(self, capacity: int = 256, enabled: bool = False) -> None:
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        self.capacity = capacity
        self.enabled = enabled
        self.dropped = 0
        self._rings: dict[int, deque[EventRecord]] = {}

    def record(self, rank: int, superstep: int, kind: str, detail: str) -> None:
        ring = self._rings.get(rank)
        if ring is None:
            ring = self._rings[rank] = deque(maxlen=self.capacity)
        if len(ring) == self.capacity:
            self.dropped += 1
        ring.append(EventRecord(superstep, kind, detail))

    def set_capacity(self, capacity: int) -> None:
        """Re-bound every ring (keeps the newest ``capacity`` entries)."""
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        if capacity != self.capacity:
            self.capacity = capacity
            self._rings = {
                rank: deque(ring, maxlen=capacity)
                for rank, ring in self._rings.items()
            }

    def rings(self) -> dict[int, list[EventRecord]]:
        """Snapshot: rank -> events, oldest first."""
        return {rank: list(ring) for rank, ring in sorted(self._rings.items())}

    def count(self, kind: str | None = None) -> int:
        return sum(
            1
            for ring in self._rings.values()
            for ev in ring
            if kind is None or ev.kind == kind
        )

    def clear(self) -> None:
        self._rings.clear()
        self.dropped = 0
