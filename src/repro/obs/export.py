"""Exporters: Chrome trace-event JSON, JSON-lines, and text summaries.

The Chrome format (one ``{"traceEvents": [...]}`` object of complete
``"X"`` duration events and ``"i"`` instants) loads directly in
Perfetto (https://ui.perfetto.dev) or ``chrome://tracing``; lanes are
one host thread plus one thread per rank.  Timestamps are microseconds
relative to the earliest record, emitted strictly increasing per lane
(ties from clock granularity are nudged by 1 ns) so downstream
consumers can binary-search them.

The JSON-lines form is the post-mortem/archival dump: one object per
span, instant, and machine event, with a final ``metrics`` line, all
greppable without loading a viewer.
"""

from __future__ import annotations

import json
import re
from pathlib import Path

from . import Observability
from .spans import SpanRecord

__all__ = [
    "chrome_trace",
    "jsonl_records",
    "rotate_reports",
    "span_stats",
    "summary",
    "write_chrome_trace",
    "write_jsonl",
    "write_summary",
]

#: Per-PID dump filenames look like ``flight-A-p1234-18f3a.json`` or
#: ``obs-A-p1234.jsonl``; the *kind* is everything before the ``-p<pid>``
#: suffix (``flight-A``, ``obs-A``), so rotation keeps the newest dumps
#: of each kind rather than the newest overall.
_REPORT_KIND = re.compile(r"^(?P<kind>.+?)-p\d+")


def rotate_reports(directory, keep: int = 16) -> list[Path]:
    """Bound a report directory's growth: keep the newest ``keep`` dump
    files *per kind* (flight recorder, obs trace, ... -- grouped by the
    filename prefix before the per-PID suffix) and delete the rest,
    oldest first by mtime.  Files that do not match the per-PID naming
    scheme are never touched.  Returns the deleted paths.

    Every dump site calls this after writing, so soak runs that fail
    thousands of exchanges leave a bounded, freshest-first
    ``fault-reports/`` instead of an unbounded one.
    """
    directory = Path(directory)
    if keep < 1 or not directory.is_dir():
        return []
    groups: dict[str, list[tuple[float, Path]]] = {}
    for path in directory.iterdir():
        match = _REPORT_KIND.match(path.name)
        if match is None or not path.is_file():
            continue
        try:
            mtime = path.stat().st_mtime
        except OSError:
            continue  # raced a concurrent rotation
        groups.setdefault(match.group("kind"), []).append((mtime, path))
    deleted: list[Path] = []
    for entries in groups.values():
        entries.sort(key=lambda e: (e[0], e[1].name), reverse=True)
        for _, path in entries[keep:]:
            try:
                path.unlink()
            except OSError:
                continue
            deleted.append(path)
    return deleted

#: Chrome tid for host-side (rank-less) records; ranks map to rank + 1.
HOST_TID = 0


def _tid(rank: int | None) -> int:
    return HOST_TID if rank is None else rank + 1


def chrome_trace(obs: Observability, pid: int = 0) -> dict:
    """Render the trace buffer as a Chrome trace-event object.

    Spans become complete ``"X"`` events (``ts``/``dur`` in µs), instants
    become thread-scoped ``"i"`` events; metadata events name the
    process and per-rank thread lanes.  Within each lane events are
    sorted by start time and de-tied so ``ts`` is strictly increasing.
    """
    records = obs.trace.records()
    base_ns = min((r.ts_ns for r in records), default=0)

    by_tid: dict[int, list[SpanRecord]] = {}
    for rec in records:
        by_tid.setdefault(_tid(rec.rank), []).append(rec)

    events: list[dict] = [
        {
            "name": "process_name",
            "ph": "M",
            "pid": pid,
            "tid": HOST_TID,
            "args": {"name": "repro SPMD machine"},
        }
    ]
    for tid in sorted(by_tid):
        events.append(
            {
                "name": "thread_name",
                "ph": "M",
                "pid": pid,
                "tid": tid,
                "args": {"name": "host" if tid == HOST_TID else f"rank {tid - 1}"},
            }
        )
    for tid, recs in sorted(by_tid.items()):
        recs.sort(key=lambda r: (r.ts_ns, -(r.dur_ns or 0)))
        last_ns = -1
        for rec in recs:
            ts_ns = rec.ts_ns - base_ns
            if ts_ns <= last_ns:  # clock-granularity tie: nudge 1 ns
                ts_ns = last_ns + 1
            last_ns = ts_ns
            event = {
                "name": rec.name,
                "ph": "X" if not rec.is_instant else "i",
                "pid": pid,
                "tid": tid,
                "ts": ts_ns / 1000.0,
                "args": rec.attrs_dict(),
            }
            if rec.is_instant:
                event["s"] = "t"  # thread-scoped instant
            else:
                event["dur"] = rec.dur_ns / 1000.0
            events.append(event)
    return {"traceEvents": events, "displayTimeUnit": "ms"}


def write_chrome_trace(obs: Observability, path) -> Path:
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(json.dumps(chrome_trace(obs), indent=1) + "\n")
    return path


def jsonl_records(obs: Observability) -> list[dict]:
    """Every span/instant/machine-event as one flat dict each, followed
    by a single ``metrics`` record (the registry + plan-cache snapshot)."""
    out: list[dict] = []
    for rec in obs.trace.records():
        out.append(
            {
                "type": "instant" if rec.is_instant else "span",
                "name": rec.name,
                "rank": rec.rank,
                "ts_ns": rec.ts_ns,
                "dur_ns": rec.dur_ns,
                "depth": rec.depth,
                "attrs": rec.attrs_dict(),
            }
        )
    for rank, ring in obs.events.rings().items():
        for ev in ring:
            out.append(
                {
                    "type": "event",
                    "rank": rank,
                    "superstep": ev.superstep,
                    "kind": ev.kind,
                    "detail": ev.detail,
                }
            )
    out.append({"type": "metrics", **obs.snapshot()})
    return out


def write_jsonl(obs: Observability, path) -> Path:
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    with path.open("w") as fh:
        for record in jsonl_records(obs):
            fh.write(json.dumps(record, default=str) + "\n")
    return path


def span_stats(obs: Observability) -> list[dict]:
    """Per-span-name aggregates: count, total/mean/max duration (ms),
    sorted by total descending -- the profile table of the summary."""
    agg: dict[str, list[int]] = {}
    for rec in obs.trace.records():
        if rec.is_instant:
            continue
        entry = agg.setdefault(rec.name, [0, 0, 0])
        entry[0] += 1
        entry[1] += rec.dur_ns
        entry[2] = max(entry[2], rec.dur_ns)
    rows = [
        {
            "name": name,
            "count": count,
            "total_ms": total / 1e6,
            "mean_ms": total / count / 1e6,
            "max_ms": peak / 1e6,
        }
        for name, (count, total, peak) in agg.items()
    ]
    rows.sort(key=lambda r: -r["total_ms"])
    return rows


def summary(obs: Observability) -> str:
    """Plain-text report: span profile, metric values, buffer health."""
    from ..viz.tables import render_metrics, render_span_stats

    snap = obs.snapshot()
    parts = [
        render_span_stats(span_stats(obs)),
        "",
        render_metrics(snap["metrics"], plan_caches=snap["plan_caches"]),
        "",
        (
            f"buffers: {snap['spans']} spans ({snap['dropped_spans']} dropped), "
            f"{snap['events']} machine events ({snap['dropped_events']} dropped)"
        ),
    ]
    return "\n".join(parts)


def write_summary(obs: Observability, path) -> Path:
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(summary(obs) + "\n")
    return path
