"""Counters, gauges, and fixed-bucket histograms with no-op disabled mode.

A :class:`MetricsRegistry` hands out named instruments on first use.
When the registry is disabled every lookup returns the shared null
instrument, whose mutators are empty methods -- the hot paths
(:meth:`repro.machine.network.Network.send`, the resilient protocol
rounds, the vectorized kernels) pay one attribute lookup and one no-op
call, nothing else.  There is no locking: the virtual machine is
single-threaded by construction (node programs run in rank order inside
a superstep), so plain integer addition is already atomic enough.

The registry's :meth:`~MetricsRegistry.snapshot` is plain JSON-ready
data; :func:`repro.viz.tables.render_metrics` renders it as the summary
table and :mod:`repro.obs.export` folds it into the JSONL dump.
"""

from __future__ import annotations

from bisect import bisect_right

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "DEFAULT_BYTE_BUCKETS",
    "DEFAULT_TIME_BUCKETS_NS",
]

#: Power-of-4 byte buckets: 64 B .. 64 MiB (message and payload sizes).
DEFAULT_BYTE_BUCKETS: tuple[int, ...] = tuple(64 * 4**i for i in range(10))

#: Power-of-4 nanosecond buckets: 1 µs .. 256 ms (span durations).
DEFAULT_TIME_BUCKETS_NS: tuple[int, ...] = tuple(1_000 * 4**i for i in range(10))


class Counter:
    """Monotonically increasing integer."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value = 0

    def inc(self, n: int = 1) -> None:
        self.value += n


class Gauge:
    """Last-write-wins scalar (queue depths, cache sizes)."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value = 0

    def set(self, value) -> None:
        self.value = value


class Histogram:
    """Fixed-bucket histogram: counts of observations ``<= bucket[i]``
    per bucket plus one overflow slot, with running count and sum."""

    __slots__ = ("buckets", "counts", "count", "total")

    def __init__(self, buckets: tuple[int, ...] = DEFAULT_BYTE_BUCKETS) -> None:
        if not buckets or list(buckets) != sorted(buckets):
            raise ValueError(f"buckets must be non-empty and ascending: {buckets}")
        self.buckets = tuple(buckets)
        self.counts = [0] * (len(buckets) + 1)
        self.count = 0
        self.total = 0

    def observe(self, value) -> None:
        self.counts[bisect_right(self.buckets, value)] += 1
        self.count += 1
        self.total += value

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0


class _NullCounter:
    __slots__ = ()
    value = 0

    def inc(self, n: int = 1) -> None:
        pass


class _NullGauge:
    __slots__ = ()
    value = 0

    def set(self, value) -> None:
        pass


class _NullHistogram:
    __slots__ = ()
    buckets: tuple[int, ...] = ()
    counts: list[int] = []
    count = 0
    total = 0
    mean = 0.0

    def observe(self, value) -> None:
        pass


_NULL_COUNTER = _NullCounter()
_NULL_GAUGE = _NullGauge()
_NULL_HISTOGRAM = _NullHistogram()


class MetricsRegistry:
    """Named instruments, created on first use.

    Disabled registries hand out shared null instruments and record
    nothing; :meth:`snapshot` is then empty.  Names are free-form but
    the runtime uses dotted ``layer.metric`` names (see
    docs/OBSERVABILITY.md for the taxonomy).
    """

    def __init__(self, enabled: bool = True) -> None:
        self.enabled = enabled
        self._counters: dict[str, Counter] = {}
        self._gauges: dict[str, Gauge] = {}
        self._histograms: dict[str, Histogram] = {}

    # -- instrument accessors -----------------------------------------

    def counter(self, name: str) -> Counter:
        if not self.enabled:
            return _NULL_COUNTER
        c = self._counters.get(name)
        if c is None:
            c = self._counters[name] = Counter()
        return c

    def gauge(self, name: str) -> Gauge:
        if not self.enabled:
            return _NULL_GAUGE
        g = self._gauges.get(name)
        if g is None:
            g = self._gauges[name] = Gauge()
        return g

    def histogram(
        self, name: str, buckets: tuple[int, ...] = DEFAULT_BYTE_BUCKETS
    ) -> Histogram:
        if not self.enabled:
            return _NULL_HISTOGRAM
        h = self._histograms.get(name)
        if h is None:
            h = self._histograms[name] = Histogram(buckets)
        return h

    # -- one-shot conveniences (the instrumentation call sites) -------

    def inc(self, name: str, n: int = 1) -> None:
        if self.enabled:
            self.counter(name).inc(n)

    def set(self, name: str, value) -> None:
        if self.enabled:
            self.gauge(name).set(value)

    def observe(
        self, name: str, value, buckets: tuple[int, ...] = DEFAULT_BYTE_BUCKETS
    ) -> None:
        if self.enabled:
            self.histogram(name, buckets).observe(value)

    # -- introspection ------------------------------------------------

    def value(self, name: str) -> int:
        """Current value of a counter (0 if never incremented)."""
        c = self._counters.get(name)
        return c.value if c is not None else 0

    def snapshot(self) -> dict:
        """JSON-ready ``{counters, gauges, histograms}`` view.

        A histogram with zero observations exports empty bucket counts
        (``count == 0`` guard): an instrument that exists but never
        observed anything must not produce rows of misleading zeros in
        text summaries or scrapes -- renderers show "(no observations)"
        and the Prometheus exporter emits only ``_sum``/``_count``.
        """
        return {
            "counters": {
                name: c.value for name, c in sorted(self._counters.items())
            },
            "gauges": {
                name: g.value for name, g in sorted(self._gauges.items())
            },
            "histograms": {
                name: {
                    "buckets": list(h.buckets),
                    "counts": list(h.counts) if h.count > 0 else [],
                    "count": h.count,
                    "total": h.total,
                    "mean": h.mean,
                }
                for name, h in sorted(self._histograms.items())
            },
        }

    def clear(self) -> None:
        self._counters.clear()
        self._gauges.clear()
        self._histograms.clear()
