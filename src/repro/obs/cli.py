"""``python -m repro trace`` -- run instrumented programs, export traces.

Runs one or more built-in SPMD programs on a machine with observability
enabled, then writes a Chrome trace-event file (load it in Perfetto,
https://ui.perfetto.dev, or ``chrome://tracing``) plus optional
JSON-lines and text-summary exports.  Programs::

    copy          A(0:n-1) = B(0:n-1) across two cyclic layouts
    redistribute  whole-array cyclic(k_src) -> cyclic(k_dst)
    transpose     distributed A = B^T on a 2x2 grid
    fill          strided section fill, all four node-code shapes
    resilient     fault-injected checkpointed resilient redistribution

Examples::

    python -m repro trace copy --out trace.json
    python -m repro trace resilient --drop 0.3 --seed 2 --summary -
    python -m repro trace copy redistribute fill --jsonl trace.jsonl
"""

from __future__ import annotations

import argparse
import sys

import numpy as np

from . import Observability, set_ambient
from .export import write_chrome_trace, write_jsonl, write_summary, summary

__all__ = ["PROGRAMS", "main", "run_program"]


def _vector(name: str, n: int, p: int, k: int):
    from ..distribution.array import AxisMap, DistributedArray
    from ..distribution.dist import CyclicK, ProcessorGrid

    grid = ProcessorGrid("P", (p,))
    return DistributedArray(name, (n,), grid, (AxisMap(CyclicK(k), grid_axis=0),))


def _run_copy(vm, args) -> None:
    from ..distribution.section import RegularSection
    from ..runtime.exec import collect, distribute, execute_copy

    n = args.n
    a = _vector("A", n, vm.p, args.k_dst)
    b = _vector("B", n, vm.p, args.k_src)
    distribute(vm, a, np.zeros(n))
    distribute(vm, b, np.arange(n, dtype=float))
    sec = RegularSection(0, n - 1, 1)
    for _ in range(args.repeat):
        execute_copy(vm, a, sec, b, sec)
    collect(vm, a)


def _run_redistribute(vm, args) -> None:
    from ..runtime.exec import collect, distribute
    from ..runtime.redistribute import redistribute

    n = args.n
    src = _vector("S", n, vm.p, args.k_src)
    dst = _vector("D", n, vm.p, args.k_dst)
    distribute(vm, src, np.arange(n, dtype=float))
    distribute(vm, dst, np.zeros(n))
    for _ in range(args.repeat):
        redistribute(vm, dst, src)
    collect(vm, dst)


def _run_transpose(vm, args) -> None:
    from ..distribution.array import AxisMap, DistributedArray
    from ..distribution.dist import CyclicK, ProcessorGrid
    from ..runtime.exec import distribute, execute_transpose

    if vm.p != 4:
        raise SystemExit("transpose program needs --p 4 (a 2x2 grid)")
    n = max(8, int(np.sqrt(args.n)))
    grid = ProcessorGrid("G", (2, 2))
    maps = (
        AxisMap(CyclicK(args.k_src), grid_axis=0),
        AxisMap(CyclicK(args.k_src), grid_axis=1),
    )
    a = DistributedArray("A", (n, n), grid, maps)
    b = DistributedArray("B", (n, n), grid, maps)
    distribute(vm, a, np.zeros((n, n)))
    distribute(vm, b, np.arange(n * n, dtype=float).reshape(n, n))
    for _ in range(args.repeat):
        execute_transpose(vm, a, b)


def _run_fill(vm, args) -> None:
    from ..distribution.section import RegularSection
    from ..runtime.exec import distribute, execute_fill

    n = args.n
    a = _vector("A", n, vm.p, args.k_dst)
    distribute(vm, a, np.zeros(n))
    sec = (RegularSection(0, n - 1, 3),)
    for _ in range(args.repeat):
        for shape in "abcv":
            execute_fill(vm, a, sec, 1.0, shape=shape)


def _run_resilient(vm, args) -> None:
    from ..machine.checkpoint import CheckpointPolicy, CheckpointStore
    from ..runtime.exec import collect, distribute
    from ..runtime.resilient import ExchangeFailure, redistribute_resilient

    n = args.n
    src = _vector("S", n, vm.p, args.k_src)
    dst = _vector("D", n, vm.p, args.k_dst)
    distribute(vm, src, np.arange(n, dtype=float))
    distribute(vm, dst, np.zeros(n))
    store = CheckpointStore(CheckpointPolicy(every=2, retention=4))
    try:
        stats, report = redistribute_resilient(
            vm, dst, src, checkpoints=store, auditor=True
        )
        print(
            f"resilient: converged in {report.supersteps} supersteps, "
            f"{report.retries} retransmits, "
            f"{report.chunks_repaired} chunks repaired",
            file=sys.stderr,
        )
    except ExchangeFailure as exc:
        print(f"resilient: {exc}", file=sys.stderr)
    collect(vm, dst)


PROGRAMS = {
    "copy": _run_copy,
    "redistribute": _run_redistribute,
    "transpose": _run_transpose,
    "fill": _run_fill,
    "resilient": _run_resilient,
}


def run_program(name: str, vm, args) -> None:
    """Run one named program on an (instrumented) machine."""
    with vm.obs.span("program", program=name):
        PROGRAMS[name](vm, args)


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro trace",
        description=__doc__,
        formatter_class=argparse.RawDescriptionHelpFormatter,
    )
    parser.add_argument(
        "programs", nargs="+", choices=sorted(PROGRAMS),
        help="programs to run, in order, on one machine",
    )
    parser.add_argument("--p", type=int, default=4, help="ranks (default 4)")
    parser.add_argument("--n", type=int, default=240, help="elements (default 240)")
    parser.add_argument("--k-src", type=int, default=3, help="source block size")
    parser.add_argument("--k-dst", type=int, default=7, help="dest block size")
    parser.add_argument("--repeat", type=int, default=2,
                        help="statement repetitions (shows plan-cache hits)")
    parser.add_argument("--seed", type=int, default=0, help="fault-plan seed")
    parser.add_argument("--drop", type=float, default=0.0)
    parser.add_argument("--duplicate", type=float, default=0.0)
    parser.add_argument("--corrupt", type=float, default=0.0)
    parser.add_argument("--scribble", type=float, default=0.0)
    parser.add_argument("--out", default="trace.json",
                        help="Chrome trace-event output path (default trace.json)")
    parser.add_argument("--jsonl", default=None,
                        help="also write a JSON-lines dump to this path")
    parser.add_argument("--summary", default=None, metavar="PATH",
                        help="also write the text summary ('-' for stdout)")
    parser.add_argument("--prom", default=None, metavar="PATH",
                        help="also dump the metrics registry as Prometheus "
                             "exposition text ('-' for stdout), the same "
                             "body a /metrics scrape would see")
    parser.add_argument("--quiet", action="store_true",
                        help="suppress the closing one-line report")
    args = parser.parse_args(argv)

    from ..machine.faults import FaultPlan
    from ..machine.vm import VirtualMachine

    plan = None
    if args.drop or args.duplicate or args.corrupt or args.scribble:
        plan = FaultPlan(
            seed=args.seed, drop=args.drop, duplicate=args.duplicate,
            corrupt=args.corrupt, scribble=args.scribble,
        )
    obs = Observability(enabled=True)
    previous = set_ambient(obs)
    try:
        for name in args.programs:
            # One machine per program, all reporting into the same
            # handle.  Only the resilient protocol survives an
            # adversarial interconnect, so the fault plan applies to it
            # alone.
            vm = VirtualMachine(
                args.p,
                fault_plan=plan if name == "resilient" else None,
                obs=obs,
            )
            run_program(name, vm, args)
    finally:
        set_ambient(previous)

    path = write_chrome_trace(obs, args.out)
    if args.jsonl:
        write_jsonl(obs, args.jsonl)
    if args.summary == "-":
        print(summary(obs))
    elif args.summary:
        write_summary(obs, args.summary)
    if args.prom:
        from .promexport import prometheus_text

        text = prometheus_text(obs.metrics.snapshot())
        if args.prom == "-":
            sys.stdout.write(text)
        else:
            with open(args.prom, "w", encoding="utf-8") as fh:
                fh.write(text)
    if not args.quiet:
        snap = obs.snapshot()
        print(
            f"wrote {path} ({snap['spans']} spans, "
            f"{snap['events']} machine events); "
            f"supersteps={obs.metrics.value('vm.supersteps')}"
        )
    return 0


if __name__ == "__main__":  # pragma: no cover - exercised via python -m repro
    raise SystemExit(main())
