"""Unified tracing, metrics, and profiling for the SPMD runtime.

The paper's claim is a performance claim, and the repo's three hot
subsystems -- the vectorized kernels, the plan/schedule cache, and the
resilient exchange -- each kept private ad-hoc counters.  This package
is the one substrate they all report through:

* :mod:`repro.obs.spans` -- nestable monotonic-clock spans and instant
  events in a bounded global :class:`~repro.obs.spans.TraceBuffer`,
  plus the per-rank machine-:class:`~repro.obs.spans.EventLog` the
  flight recorder is a view over;
* :mod:`repro.obs.metrics` -- named counters/gauges/histograms with a
  true no-op disabled path;
* :mod:`repro.obs.export` -- JSON-lines and Chrome trace-event
  exporters (open the latter in Perfetto / ``chrome://tracing``) and a
  plain-text summary built on :mod:`repro.viz.tables`.

Everything hangs off one :class:`Observability` handle threaded from
:class:`repro.machine.vm.VirtualMachine` (``VirtualMachine(p,
obs=Observability())``); library layers that have no machine in scope
(:mod:`repro.core.kernels`, plan-cache misses) report to the process
:func:`ambient` handle, which is disabled unless a driver (the
``python -m repro trace`` CLI, a benchmark) installs an enabled one.
See docs/OBSERVABILITY.md for the event taxonomy and overhead budget.
"""

from __future__ import annotations

import os
import weakref
from dataclasses import dataclass
from pathlib import Path

from .metrics import (
    DEFAULT_BYTE_BUCKETS,
    DEFAULT_TIME_BUCKETS_NS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
)
from .spans import EventLog, EventRecord, SpanRecord, TraceBuffer, monotonic_ns

__all__ = [
    "HandleLimits",
    "Observability",
    "ambient",
    "set_ambient",
    "dump_active",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "DEFAULT_BYTE_BUCKETS",
    "DEFAULT_TIME_BUCKETS_NS",
    "EventLog",
    "EventRecord",
    "SpanRecord",
    "TraceBuffer",
]

#: Live *enabled* handles, weakly held, so a test-failure hook can dump
#: whatever was being traced when things went wrong (see dump_active).
_LIVE: "weakref.WeakSet[Observability]" = weakref.WeakSet()


@dataclass(frozen=True)
class HandleLimits:
    """Memory bounds for one :class:`Observability` handle.

    Long-running processes (the planning service foremost) cannot let
    trace state grow with uptime: spans and machine events live in rings
    of these sizes, and :meth:`Observability.flush_jsonl` periodically
    drains the rings to disk -- keeping at most ``flush_keep`` flush
    files per label via :func:`repro.obs.export.rotate_reports` -- so
    the steady-state footprint is ``O(max_spans + ranks *
    event_capacity)`` regardless of how long the process runs.
    """

    max_spans: int = 65536
    event_capacity: int = 256
    flush_keep: int = 16

    def __post_init__(self) -> None:
        for name in ("max_spans", "event_capacity", "flush_keep"):
            if getattr(self, name) < 1:
                raise ValueError(f"{name} must be >= 1, got {getattr(self, name)}")


class _NullSpan:
    """Shared no-op context manager returned by disabled ``span()``."""

    __slots__ = ()

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, *exc) -> bool:
        return False

    def set(self, **attrs) -> None:
        pass


_NULL_SPAN = _NullSpan()


class _Span:
    """An open span: created by :meth:`Observability.span`, records
    itself into the trace buffer on ``__exit__``.  Spans must close in
    LIFO order (the ``with`` statement guarantees it)."""

    __slots__ = ("_obs", "name", "rank", "_attrs", "_start")

    def __init__(self, obs: "Observability", name: str, rank, attrs: dict) -> None:
        self._obs = obs
        self.name = name
        self.rank = rank
        self._attrs = attrs
        self._start = 0

    def set(self, **attrs) -> None:
        """Attach/override attributes while the span is open."""
        self._attrs.update(attrs)

    def __enter__(self) -> "_Span":
        self._obs._stack.append(self)
        self._start = self._obs.clock()
        return self

    def __exit__(self, *exc) -> bool:
        obs = self._obs
        end = obs.clock()
        obs._stack.pop()
        obs.trace.add(
            SpanRecord(
                self.name,
                self.rank,
                self._start,
                end - self._start,
                len(obs._stack),
                tuple(self._attrs.items()),
            )
        )
        return False


class Observability:
    """One handle bundling the span buffer, metric registry, and
    machine-event log.

    ``enabled=False`` (the default for machines constructed without an
    explicit handle) makes every instrument a no-op: ``span()`` returns
    a shared null context manager, metric mutators return immediately,
    and the event log records nothing -- unless a
    :class:`~repro.machine.trace.FlightRecorder` attaches, which
    force-enables just the event log so post-mortem rings stay
    available.
    """

    def __init__(
        self,
        enabled: bool = True,
        max_spans: int = 65536,
        event_capacity: int = 256,
        clock=monotonic_ns,
        handle_limits: HandleLimits | None = None,
    ) -> None:
        if handle_limits is None:
            handle_limits = HandleLimits(
                max_spans=max_spans, event_capacity=event_capacity
            )
        self.enabled = enabled
        self.limits = handle_limits
        self.clock = clock
        self.metrics = MetricsRegistry(enabled)
        self.trace = TraceBuffer(handle_limits.max_spans)
        self.events = EventLog(handle_limits.event_capacity, enabled=enabled)
        self._stack: list[_Span] = []
        self._flush_n = 0
        if enabled:
            _LIVE.add(self)

    # -- spans ---------------------------------------------------------

    def span(self, name: str, rank: int | None = None, **attrs):
        """Context manager timing a nested unit of work.

        ``rank`` selects the Chrome-trace thread lane (``None`` = the
        host lane); keyword attributes land in the record verbatim.
        """
        if not self.enabled:
            return _NULL_SPAN
        return _Span(self, name, rank, attrs)

    def instant(self, name: str, rank: int | None = None, **attrs) -> None:
        """Record a zero-duration event at the current time."""
        if not self.enabled:
            return
        self.trace.add(
            SpanRecord(
                name, rank, self.clock(), None, len(self._stack),
                tuple(attrs.items()),
            )
        )

    @property
    def depth(self) -> int:
        """Number of currently open spans."""
        return len(self._stack)

    # -- metrics (conveniences mirroring MetricsRegistry) -------------

    def inc(self, name: str, n: int = 1) -> None:
        if self.enabled:
            self.metrics.counter(name).inc(n)

    def observe(self, name: str, value, buckets=DEFAULT_BYTE_BUCKETS) -> None:
        if self.enabled:
            self.metrics.histogram(name, buckets).observe(value)

    def set_gauge(self, name: str, value) -> None:
        if self.enabled:
            self.metrics.gauge(name).set(value)

    # -- machine events ------------------------------------------------

    def machine_event(self, rank: int, superstep: int, kind: str, detail: str) -> None:
        """Append to ``rank``'s bounded event ring (no-op unless the
        event log is enabled -- by ``enabled=True`` or an attached
        flight recorder)."""
        if self.events.enabled:
            self.events.record(rank, superstep, kind, detail)

    # -- snapshots -----------------------------------------------------

    def snapshot(self) -> dict:
        """JSON-ready summary: metrics, buffer occupancy, and the
        global plan-cache counters (single-sourced from
        :func:`repro.runtime.plancache.cache_stats`)."""
        from ..runtime.plancache import cache_stats

        return {
            "enabled": self.enabled,
            "metrics": self.metrics.snapshot(),
            "plan_caches": cache_stats(),
            "spans": len(self.trace),
            "dropped_spans": self.trace.dropped,
            "events": self.events.count(),
            "dropped_events": self.events.dropped,
        }

    def clear(self) -> None:
        """Empty every store (metric values, spans, events)."""
        self.metrics.clear()
        self.trace.clear()
        self.events.clear()

    def flush_jsonl(self, directory, label: str = "obs") -> Path | None:
        """Drain the span/event rings to a JSON-lines file and clear
        them (metrics are cumulative and stay).  The flush counter keeps
        filenames unique within one process; old flushes are rotated
        away past ``limits.flush_keep`` per label -- this is what keeps
        a long-running server's trace memory *and* disk bounded.

        Returns the written path, or ``None`` when disabled or when
        there is nothing buffered to flush.
        """
        if not self.enabled:
            return None
        if len(self.trace) == 0 and self.events.count() == 0:
            return None
        from .export import rotate_reports, write_jsonl

        directory = Path(directory)
        self._flush_n += 1
        path = directory / f"obs-{label}-p{os.getpid()}-f{self._flush_n:06d}.jsonl"
        write_jsonl(self, path)
        self.trace.clear()
        self.events.clear()
        rotate_reports(directory, keep=self.limits.flush_keep)
        return path


#: Process-wide fallback handle for layers with no machine in scope.
_DISABLED = Observability(enabled=False)
_ambient = _DISABLED


def ambient() -> Observability:
    """The process-ambient handle (disabled unless a driver installed
    one with :func:`set_ambient`)."""
    return _ambient


def set_ambient(obs: Observability | None) -> Observability:
    """Install ``obs`` as the ambient handle (``None`` restores the
    disabled default); returns the previous handle so callers can
    restore it."""
    global _ambient
    previous = _ambient
    _ambient = obs if obs is not None else _DISABLED
    return previous


def dump_active(directory, label: str = "trace") -> list[Path]:
    """Dump every live enabled handle's trace buffer as JSON-lines into
    ``directory``; returns the written paths.  The test suite's failure
    hook calls this so a red test leaves its trace next to the flight
    recorder dumps (see tests/conftest.py and CI)."""
    from .export import write_jsonl

    paths: list[Path] = []
    directory = Path(directory)
    for i, obs in enumerate(list(_LIVE)):
        if len(obs.trace) == 0 and obs.events.count() == 0:
            continue
        directory.mkdir(parents=True, exist_ok=True)
        # Per-PID filename: with the multiprocess backend several
        # processes may dump into one fault-reports/ directory at once.
        path = directory / f"obs-{label}-p{os.getpid()}-{i}.jsonl"
        write_jsonl(obs, path)
        paths.append(path)
    if paths:
        from .export import rotate_reports

        rotate_reports(directory)
    return paths
