"""Measured superstep profiles: what the machine *actually* did.

:mod:`repro.machine.costmodel` prices a :class:`~repro.runtime.commsets.CommSchedule`
before it runs; this module records what crossed the fabric while it
ran, per superstep, so the two can be compared
(:mod:`repro.obs.calibrate`).  A :class:`ProfileCollector` attaches to
either backend through the same seam:

* the in-process oracle (:class:`repro.machine.vm.VirtualMachine`)
  exposes it as ``network.profile`` -- ``Network.send`` and the barrier
  delivery paths feed it one record per message (per delivered copy,
  duplicates included, drops excluded);
* the multiprocess backend (:class:`repro.machine.mp.machine.MpMachine`)
  records sends driver-side (they are staged there anyway) and receives
  from the **bounded per-source delta table** each worker piggybacks on
  its existing ``deliver`` barrier reply -- at most ``p`` entries of
  ``(messages, bytes, max_bytes)`` per rank per superstep, so profiling
  adds no new wire round-trips.

Because both backends share the seeded fault schedule
(:func:`repro.machine.faults.plan_channel_delivery`) and byte accounting
(:func:`repro.machine.network.payload_nbytes`), the *deterministic*
fields of the resulting :class:`RunProfile` -- message and byte counts
per rank and per channel -- agree bit-exactly across backends for
array-payload programs; only wall-times differ.  The per-channel
``(messages, bytes, max_bytes)`` triples are exactly the sufficient
statistics of the paper-style BSP cost model, so a profile can be
re-priced in closed form without replaying the run
(:func:`repro.obs.calibrate.predicted_superstep_us`).

Wall-times come from the spans the PR 5 substrate already emits:
``superstep`` and ``barrier`` spans keyed by their ``step`` attribute,
phase labels (``pack_phase``, ``protocol_round``, ...) by interval
containment, retransmit/repair/restore instants by timestamp.  The
trace ring is bounded, so on very long runs the oldest steps may lack
wall-times (``wall_us is None``) while their traffic counts -- collected
independently of the ring -- stay complete.

This module is pure data + stdlib (no machine imports), so it is safe
to re-export from :mod:`repro.obs`.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Any, Iterable

__all__ = [
    "ChannelTraffic",
    "DETERMINISTIC_COUNTERS",
    "DETERMINISTIC_COUNTER_PREFIXES",
    "ProfileCollector",
    "RankTraffic",
    "RunProfile",
    "SuperstepProfile",
]

#: Exact counter names whose run-deltas must agree across backends.
DETERMINISTIC_COUNTERS = frozenset({
    "net.messages_sent",
    "net.bytes_sent",
    "net.messages_delivered",
    "net.bytes_delivered",
    "net.messages_quarantined",
    "vm.supersteps",
})

#: Counter-name prefixes whose run-deltas must agree across backends
#: (the resilient protocol and the injected-fault taxonomy are seeded
#: and schedule-shared, hence deterministic).
DETERMINISTIC_COUNTER_PREFIXES = ("resilient.", "faults.")

#: Span names that never label a phase (they *are* the superstep
#: machinery, or per-rank execution inside it).
_NON_PHASE_SPANS = frozenset({"superstep", "barrier", "node"})

#: Instant names folded into per-step repair counts.
_REPAIR_INSTANTS = ("repair", "restore")


@dataclass
class RankTraffic:
    """Per-rank traffic within one superstep (both directions)."""

    sent_messages: int = 0
    sent_bytes: int = 0
    recv_messages: int = 0
    recv_bytes: int = 0

    def to_json(self) -> dict:
        return {
            "sent_messages": self.sent_messages,
            "sent_bytes": self.sent_bytes,
            "recv_messages": self.recv_messages,
            "recv_bytes": self.recv_bytes,
        }

    @classmethod
    def from_json(cls, data: dict) -> "RankTraffic":
        return cls(**data)


@dataclass
class ChannelTraffic:
    """Delivered traffic on one ``(source, dest)`` channel in one
    superstep.  ``(messages, bytes, max_bytes)`` is the sufficient
    statistic for the BSP cost model: total per-channel cost is linear
    in messages and bytes, and the slowest-transit term only needs the
    largest single message."""

    messages: int = 0
    bytes: int = 0
    max_bytes: int = 0

    def add(self, nbytes: int, messages: int = 1, max_nbytes: int | None = None) -> None:
        self.messages += messages
        self.bytes += nbytes
        self.max_bytes = max(
            self.max_bytes, nbytes if max_nbytes is None else max_nbytes
        )

    def to_json(self) -> dict:
        return {
            "messages": self.messages,
            "bytes": self.bytes,
            "max_bytes": self.max_bytes,
        }

    @classmethod
    def from_json(cls, data: dict) -> "ChannelTraffic":
        return cls(**data)


@dataclass
class SuperstepProfile:
    """Everything measured about one superstep.

    ``ranks`` and ``channels`` are the deterministic fields (identical
    across backends under the same seed); ``wall_us``/``barrier_us``
    are measured wall-times (``None`` when the bounded trace ring no
    longer holds the step's span); ``phase`` is the innermost enclosing
    runtime span (``pack_phase``, ``protocol_round``, ...), if any.
    """

    step: int
    ranks: dict[int, RankTraffic] = field(default_factory=dict)
    channels: dict[tuple[int, int], ChannelTraffic] = field(default_factory=dict)
    wall_us: float | None = None
    barrier_us: float | None = None
    phase: str | None = None
    retransmits: int = 0
    repairs: int = 0

    # -- aggregates ----------------------------------------------------

    @property
    def sent_messages(self) -> int:
        return sum(r.sent_messages for r in self.ranks.values())

    @property
    def sent_bytes(self) -> int:
        return sum(r.sent_bytes for r in self.ranks.values())

    @property
    def delivered_messages(self) -> int:
        return sum(c.messages for c in self.channels.values())

    @property
    def delivered_bytes(self) -> int:
        return sum(c.bytes for c in self.channels.values())

    @property
    def remote_channels(self) -> dict[tuple[int, int], ChannelTraffic]:
        """Channels that cross ranks (self-sends cost no network time in
        the cost model, exactly as ``estimate_superstep`` skips
        ``q == r`` transfers)."""
        return {k: v for k, v in self.channels.items() if k[0] != k[1]}

    def deterministic_view(self) -> dict:
        """The backend-independent fields, JSON-keyed for comparison."""
        return {
            "step": self.step,
            "ranks": {
                str(r): t.to_json() for r, t in sorted(self.ranks.items())
            },
            "channels": {
                f"{s}->{d}": c.to_json()
                for (s, d), c in sorted(self.channels.items())
            },
        }

    # -- JSON ----------------------------------------------------------

    def to_json(self) -> dict:
        return {
            **self.deterministic_view(),
            "wall_us": self.wall_us,
            "barrier_us": self.barrier_us,
            "phase": self.phase,
            "retransmits": self.retransmits,
            "repairs": self.repairs,
        }

    @classmethod
    def from_json(cls, data: dict) -> "SuperstepProfile":
        channels = {}
        for key, val in data.get("channels", {}).items():
            src, _, dst = key.partition("->")
            channels[(int(src), int(dst))] = ChannelTraffic.from_json(val)
        return cls(
            step=data["step"],
            ranks={
                int(r): RankTraffic.from_json(t)
                for r, t in data.get("ranks", {}).items()
            },
            channels=channels,
            wall_us=data.get("wall_us"),
            barrier_us=data.get("barrier_us"),
            phase=data.get("phase"),
            retransmits=data.get("retransmits", 0),
            repairs=data.get("repairs", 0),
        )


@dataclass
class RunProfile:
    """A whole run's measured superstep profiles plus run-level views:
    metric-counter deltas over the collection window and total
    wall-time per phase span (``pack_phase``, ``exchange``, ``barrier``,
    ``audit``, ...)."""

    p: int
    backend: str
    supersteps: list[SuperstepProfile] = field(default_factory=list)
    counters: dict[str, int] = field(default_factory=dict)
    phase_wall_us: dict[str, float] = field(default_factory=dict)
    meta: dict = field(default_factory=dict)

    def __len__(self) -> int:
        return len(self.supersteps)

    def step(self, n: int) -> SuperstepProfile:
        for sp in self.supersteps:
            if sp.step == n:
                return sp
        raise KeyError(f"no superstep {n} in profile (steps: {self.steps()})")

    def steps(self) -> list[int]:
        return [sp.step for sp in self.supersteps]

    @property
    def total_sent_messages(self) -> int:
        return sum(sp.sent_messages for sp in self.supersteps)

    @property
    def total_sent_bytes(self) -> int:
        return sum(sp.sent_bytes for sp in self.supersteps)

    @property
    def total_delivered_bytes(self) -> int:
        return sum(sp.delivered_bytes for sp in self.supersteps)

    @property
    def measured_steps(self) -> list[SuperstepProfile]:
        """Supersteps whose wall-time survived the bounded trace ring."""
        return [sp for sp in self.supersteps if sp.wall_us is not None]

    def deterministic_view(self) -> dict:
        """The fields a same-seed run on the other backend must
        reproduce bit-exactly (array-payload programs; see module
        docstring for the byte-accounting caveat on deep containers)."""
        return {
            "p": self.p,
            "supersteps": [sp.deterministic_view() for sp in self.supersteps],
            "counters": {
                name: value
                for name, value in sorted(self.counters.items())
                if name in DETERMINISTIC_COUNTERS
                or name.startswith(DETERMINISTIC_COUNTER_PREFIXES)
            },
        }

    # -- JSON ----------------------------------------------------------

    def to_json(self) -> dict:
        return {
            "p": self.p,
            "backend": self.backend,
            "supersteps": [sp.to_json() for sp in self.supersteps],
            "counters": dict(sorted(self.counters.items())),
            "phase_wall_us": dict(sorted(self.phase_wall_us.items())),
            "meta": self.meta,
        }

    @classmethod
    def from_json(cls, data: dict) -> "RunProfile":
        return cls(
            p=data["p"],
            backend=data.get("backend", "unknown"),
            supersteps=[
                SuperstepProfile.from_json(sp) for sp in data.get("supersteps", [])
            ],
            counters=dict(data.get("counters", {})),
            phase_wall_us=dict(data.get("phase_wall_us", {})),
            meta=dict(data.get("meta", {})),
        )

    def dump(self, path: str) -> None:
        with open(path, "w", encoding="utf-8") as fh:
            json.dump(self.to_json(), fh, indent=2, sort_keys=True)
            fh.write("\n")

    @classmethod
    def load(cls, path: str) -> "RunProfile":
        with open(path, "r", encoding="utf-8") as fh:
            return cls.from_json(json.load(fh))


class _StepAccum:
    """Mutable per-superstep traffic accumulator (collector internal)."""

    __slots__ = ("ranks", "channels")

    def __init__(self) -> None:
        self.ranks: dict[int, RankTraffic] = {}
        self.channels: dict[tuple[int, int], ChannelTraffic] = {}

    def rank(self, r: int) -> RankTraffic:
        t = self.ranks.get(r)
        if t is None:
            t = self.ranks[r] = RankTraffic()
        return t

    def channel(self, source: int, dest: int) -> ChannelTraffic:
        c = self.channels.get((source, dest))
        if c is None:
            c = self.channels[(source, dest)] = ChannelTraffic()
        return c


class ProfileCollector:
    """Collect a :class:`RunProfile` from a live machine.

    Usage::

        collector = ProfileCollector()
        with collector.attach(machine):
            run_program(machine)
        profile = collector.build()

    ``attach`` plugs the collector into the backend's traffic seam and
    snapshots the obs counter baseline; ``build`` assembles the
    :class:`RunProfile`, folding in span wall-times and counter deltas.
    One collector observes one machine at a time (the superstep clock is
    per-machine); ``build`` may be called while still attached.
    """

    def __init__(self) -> None:
        self._machine: Any = None
        self._host: Any = None
        self._backend = "unattached"
        self._steps: dict[int, _StepAccum] = {}
        self._base_counters: dict[str, int] = {}

    # -- attachment ----------------------------------------------------

    def attach(self, machine: Any) -> "ProfileCollector":
        if self._machine is not None:
            raise RuntimeError("collector is already attached to a machine")
        network = getattr(machine, "network", None)
        host = network if network is not None else machine
        if getattr(host, "profile", None) is not None:
            raise RuntimeError("machine already has a profile collector attached")
        host.profile = self
        self._machine = machine
        self._host = host
        self._backend = "inprocess" if network is not None else "mp"
        self._base_counters = dict(
            machine.obs.metrics.snapshot().get("counters", {})
        )
        return self

    def detach(self) -> None:
        if self._host is not None:
            self._host.profile = None
        self._host = None

    def __enter__(self) -> "ProfileCollector":
        if self._machine is None:
            raise RuntimeError("attach(machine) before entering the collector")
        return self

    def __exit__(self, *exc: Any) -> bool:
        self.detach()
        return False

    # -- the traffic seam (called by the machine layers) ---------------

    def record_send(self, step: int, source: int, dest: int, nbytes: int) -> None:
        acc = self._steps.get(step)
        if acc is None:
            acc = self._steps[step] = _StepAccum()
        rank = acc.rank(source)
        rank.sent_messages += 1
        rank.sent_bytes += nbytes

    def record_delivery(self, step: int, source: int, dest: int, nbytes: int) -> None:
        """One delivered copy (the oracle's per-message path)."""
        self.record_delivery_batch(step, source, dest, 1, nbytes, nbytes)

    def record_delivery_batch(
        self,
        step: int,
        source: int,
        dest: int,
        messages: int,
        nbytes: int,
        max_nbytes: int,
    ) -> None:
        """A worker's per-source delivery delta (the mp barrier path)."""
        if messages <= 0:
            return
        acc = self._steps.get(step)
        if acc is None:
            acc = self._steps[step] = _StepAccum()
        rank = acc.rank(dest)
        rank.recv_messages += messages
        rank.recv_bytes += nbytes
        acc.channel(source, dest).add(nbytes, messages, max_nbytes)

    # -- assembly ------------------------------------------------------

    def build(self, **meta: Any) -> RunProfile:
        if self._machine is None:
            raise RuntimeError("collector was never attached to a machine")
        machine = self._machine
        obs = machine.obs
        counters_now = obs.metrics.snapshot().get("counters", {})
        deltas = {
            name: value - self._base_counters.get(name, 0)
            for name, value in counters_now.items()
            if value - self._base_counters.get(name, 0)
        }
        profile = RunProfile(
            p=machine.p,
            backend=self._backend,
            counters=deltas,
            meta=dict(meta),
        )
        records = obs.trace.records()
        step_spans = _spans_by_step(records, "superstep")
        barrier_spans = _spans_by_step(records, "barrier")
        phase_spans = [
            r
            for r in records
            if not r.is_instant and r.name not in _NON_PHASE_SPANS
        ]
        retransmits = [r for r in records if r.is_instant and r.name == "retransmit"]
        repairs = [
            r for r in records if r.is_instant and r.name in _REPAIR_INSTANTS
        ]
        for step in sorted(self._steps):
            acc = self._steps[step]
            sp = SuperstepProfile(step=step, ranks=acc.ranks, channels=acc.channels)
            span = step_spans.get(step)
            if span is not None:
                sp.wall_us = span.dur_ns / 1_000.0
                sp.phase = _innermost_phase(phase_spans, span)
                sp.retransmits = _instants_within(retransmits, span)
                sp.repairs = _instants_within(repairs, span)
            barrier = barrier_spans.get(step)
            if barrier is not None:
                sp.barrier_us = barrier.dur_ns / 1_000.0
            profile.supersteps.append(sp)
        # Steps with a span but no traffic still carry timing info
        # (pure-compute supersteps anchor the fixed per-step overhead).
        for step, span in sorted(step_spans.items()):
            if step in self._steps:
                continue
            sp = SuperstepProfile(step=step, wall_us=span.dur_ns / 1_000.0)
            sp.phase = _innermost_phase(phase_spans, span)
            sp.retransmits = _instants_within(retransmits, span)
            sp.repairs = _instants_within(repairs, span)
            barrier = barrier_spans.get(step)
            if barrier is not None:
                sp.barrier_us = barrier.dur_ns / 1_000.0
            profile.supersteps.append(sp)
        profile.supersteps.sort(key=lambda sp: sp.step)
        totals: dict[str, float] = {}
        for r in phase_spans:
            totals[r.name] = totals.get(r.name, 0.0) + r.dur_ns / 1_000.0
        for name in ("superstep", "barrier"):
            total = sum(r.dur_ns for r in records if not r.is_instant and r.name == name)
            if total:
                totals[name] = total / 1_000.0
        profile.phase_wall_us = totals
        return profile


def _spans_by_step(records: Iterable[Any], name: str) -> dict[int, Any]:
    """Latest span per ``step`` attribute value (steps are unique per
    machine; "latest" only matters if an obs handle is shared across
    machines, where later machines win)."""
    out: dict[int, Any] = {}
    for r in records:
        if r.is_instant or r.name != name:
            continue
        step = r.attrs_dict().get("step")
        if step is not None:
            out[int(step)] = r
    return out


def _innermost_phase(phase_spans: list[Any], span: Any) -> str | None:
    """Name of the smallest phase span whose interval contains the
    superstep span's start (phases like ``pack_phase`` fully enclose the
    supersteps they drive)."""
    best = None
    best_dur = None
    for r in phase_spans:
        if r.ts_ns <= span.ts_ns and span.ts_ns + span.dur_ns <= r.ts_ns + r.dur_ns:
            if best_dur is None or r.dur_ns < best_dur:
                best, best_dur = r.name, r.dur_ns
    return best


def _instants_within(instants: list[Any], span: Any) -> int:
    end = span.ts_ns + span.dur_ns
    return sum(1 for r in instants if span.ts_ns <= r.ts_ns < end)
