"""Replay measured profiles against the cost model, and fit it.

:func:`predicted_superstep_us` re-prices a measured
:class:`~repro.obs.profile.SuperstepProfile` in closed form: the
per-channel ``(messages, bytes, max_bytes)`` triples a profile records
are exactly the sufficient statistics of the BSP model in
:mod:`repro.machine.costmodel` --

    per-channel cost  = alpha*messages + beta*bytes + gamma*(hops-1)*messages
    per-rank load     = sum of its channels' costs (sending and receiving)
    superstep time    = max per-rank load + slowest single transit

-- so the result coincides with
:func:`repro.machine.costmodel.estimate_superstep` whenever the profile
was produced by one message per transfer (``tests/obs/test_calibrate.py``
asserts the coincidence bit-for-bit).

:func:`replay` tabulates predicted-vs-measured residuals per superstep;
:func:`fit` least-squares-fits the model's ``(alpha, beta, gamma)`` plus
a fixed per-superstep overhead from the measured wall-times, yielding a
:class:`CalibratedCostModel` and residual statistics.  The fit
linearizes the BSP ``max`` by freezing the bottleneck decomposition
under the default model (which rank is the bottleneck, which transit is
slowest), turning each measured superstep into one linear equation in
the four parameters; negative coefficients are clamped to zero and the
system re-solved (simple active-set), since a negative latency or
bandwidth is physically meaningless.

The default constants model a 1995 iPSC/860 in microseconds; measured
Python supersteps are dominated by interpreter overhead, so calibration
routinely cuts the mean absolute residual by an order of magnitude --
that fitted model is what ROADMAP item 2's layout search should rank
candidate distributions with (``bench/costs.py --calibrated``).
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Any

import numpy as np

from ..machine.costmodel import CostModel
from ..machine.topology import Topology
from .profile import RunProfile, SuperstepProfile

__all__ = [
    "CalibratedCostModel",
    "CalibrationResult",
    "ResidualRow",
    "fit",
    "load_model",
    "predicted_superstep_us",
    "replay",
]


@dataclass(frozen=True, slots=True)
class CalibratedCostModel(CostModel):
    """A :class:`~repro.machine.costmodel.CostModel` with parameters
    fitted from measured supersteps, plus a fixed per-superstep overhead
    (barrier + interpreter time that exists even with zero traffic).

    Drop-in everywhere a ``CostModel`` is accepted --
    ``estimate_superstep`` and the closed-form replay both work;
    ``fixed_us`` is only added by superstep-level predictions, never by
    ``message_us``.
    """

    fixed_us: float = 0.0

    def to_json(self) -> dict:
        return {
            "alpha_us": self.alpha_us,
            "beta_us_per_byte": self.beta_us_per_byte,
            "gamma_us_per_hop": self.gamma_us_per_hop,
            "word_bytes": self.word_bytes,
            "fixed_us": self.fixed_us,
        }

    @classmethod
    def from_json(cls, data: dict) -> "CalibratedCostModel":
        return cls(
            alpha_us=float(data["alpha_us"]),
            beta_us_per_byte=float(data["beta_us_per_byte"]),
            gamma_us_per_hop=float(data["gamma_us_per_hop"]),
            word_bytes=int(data.get("word_bytes", 8)),
            fixed_us=float(data.get("fixed_us", 0.0)),
        )


def predicted_superstep_us(
    sp: SuperstepProfile, topology: Topology, model: CostModel | None = None
) -> float:
    """Closed-form BSP prediction for one measured superstep.

    Uses the profile's per-channel triples directly -- no transfer list
    needed.  Self-channels cost nothing (``estimate_superstep`` parity);
    a :class:`CalibratedCostModel`'s ``fixed_us`` is added on top.
    """
    if model is None:
        model = CostModel()
    alpha = model.alpha_us
    beta = model.beta_us_per_byte
    gamma = model.gamma_us_per_hop
    load: dict[int, float] = {}
    slowest = 0.0
    for (source, dest), ch in sp.remote_channels.items():
        hops = max(topology.distance(source, dest), 1)
        cost = alpha * ch.messages + beta * ch.bytes + gamma * (hops - 1) * ch.messages
        load[source] = load.get(source, 0.0) + cost
        load[dest] = load.get(dest, 0.0) + cost
        transit = alpha + beta * ch.max_bytes + gamma * (hops - 1)
        if transit > slowest:
            slowest = transit
    total = (max(load.values()) + slowest) if load else 0.0
    return total + getattr(model, "fixed_us", 0.0)


@dataclass
class ResidualRow:
    """Predicted vs measured for one superstep."""

    step: int
    phase: str | None
    messages: int
    bytes: int
    predicted_us: float
    measured_us: float | None

    @property
    def residual_us(self) -> float | None:
        if self.measured_us is None:
            return None
        return self.measured_us - self.predicted_us

    def to_json(self) -> dict:
        return {
            "step": self.step,
            "phase": self.phase,
            "messages": self.messages,
            "bytes": self.bytes,
            "predicted_us": self.predicted_us,
            "measured_us": self.measured_us,
            "residual_us": self.residual_us,
        }


def replay(
    profile: RunProfile, topology: Topology, model: CostModel | None = None
) -> list[ResidualRow]:
    """Re-price every superstep of a profile under ``model`` and pair
    each prediction with the measured wall-time (``measured_us`` is
    ``None`` for steps whose span fell out of the bounded trace ring)."""
    return [
        ResidualRow(
            step=sp.step,
            phase=sp.phase,
            messages=sp.delivered_messages,
            bytes=sp.delivered_bytes,
            predicted_us=predicted_superstep_us(sp, topology, model),
            measured_us=sp.wall_us,
        )
        for sp in profile.supersteps
    ]


def _mae(rows: list[ResidualRow]) -> float:
    residuals = [abs(r.residual_us) for r in rows if r.residual_us is not None]
    return float(np.mean(residuals)) if residuals else 0.0


@dataclass
class CalibrationResult:
    """A fitted model plus how much better it explains the run."""

    model: CalibratedCostModel
    n_steps: int
    mae_default_us: float
    mae_calibrated_us: float
    max_abs_residual_us: float
    rows: list[ResidualRow] = field(default_factory=list)

    @property
    def improvement_us(self) -> float:
        return self.mae_default_us - self.mae_calibrated_us

    def to_json(self) -> dict:
        return {
            "model": self.model.to_json(),
            "n_steps": self.n_steps,
            "mae_default_us": self.mae_default_us,
            "mae_calibrated_us": self.mae_calibrated_us,
            "max_abs_residual_us": self.max_abs_residual_us,
            "improvement_us": self.improvement_us,
            "rows": [r.to_json() for r in self.rows],
        }


def _features(sp: SuperstepProfile, topology: Topology) -> tuple[float, float, float]:
    """One measured superstep as a linear equation in (alpha, beta,
    gamma): coefficient = messages / bytes / hop-messages at the default
    model's bottleneck rank, plus the default-slowest transit's own
    (1, max_bytes, hops-1).  Freezing the decomposition under the
    default model linearizes the BSP max; with zero remote traffic all
    three coefficients are zero and the step anchors the fixed term."""
    default = CostModel()
    load: dict[int, tuple[float, float, float]] = {}
    best_transit = None
    best_transit_cost = -1.0
    for (source, dest), ch in sp.remote_channels.items():
        hops = max(topology.distance(source, dest), 1)
        contrib = (float(ch.messages), float(ch.bytes), float((hops - 1) * ch.messages))
        for rank in (source, dest):
            a, b, h = load.get(rank, (0.0, 0.0, 0.0))
            load[rank] = (a + contrib[0], b + contrib[1], h + contrib[2])
        transit_cost = (
            default.alpha_us
            + default.beta_us_per_byte * ch.max_bytes
            + default.gamma_us_per_hop * (hops - 1)
        )
        if transit_cost > best_transit_cost:
            best_transit_cost = transit_cost
            best_transit = (1.0, float(ch.max_bytes), float(hops - 1))
    if not load:
        return (0.0, 0.0, 0.0)
    bottleneck = max(
        load.values(),
        key=lambda f: default.alpha_us * f[0]
        + default.beta_us_per_byte * f[1]
        + default.gamma_us_per_hop * f[2],
    )
    assert best_transit is not None
    return (
        bottleneck[0] + best_transit[0],
        bottleneck[1] + best_transit[1],
        bottleneck[2] + best_transit[2],
    )


def fit(profile: RunProfile, topology: Topology) -> CalibrationResult:
    """Least-squares-fit ``(alpha, beta, gamma, fixed)`` to the
    profile's measured supersteps.  Raises :class:`ValueError` when the
    profile has no measured steps (nothing to fit against)."""
    measured = profile.measured_steps
    if not measured:
        raise ValueError(
            "profile has no measured supersteps (wall_us is None everywhere); "
            "was the machine's obs handle enabled?"
        )
    rows = [_features(sp, topology) for sp in measured]
    design = np.array([[a, b, h, 1.0] for a, b, h in rows], dtype=np.float64)
    target = np.array([sp.wall_us for sp in measured], dtype=np.float64)
    active = [True, True, True, True]
    coef = np.zeros(4)
    for _ in range(5):
        cols = [i for i in range(4) if active[i]]
        if not cols:
            break
        sol, *_ = np.linalg.lstsq(design[:, cols], target, rcond=None)
        coef[:] = 0.0
        coef[cols] = sol
        negative = [i for i in cols if coef[i] < 0.0]
        if not negative:
            break
        for i in negative:
            active[i] = False
            coef[i] = 0.0
    model = CalibratedCostModel(
        alpha_us=float(coef[0]),
        beta_us_per_byte=float(coef[1]),
        gamma_us_per_hop=float(coef[2]),
        fixed_us=float(coef[3]),
    )
    calibrated_rows = replay(profile, topology, model)
    default_rows = replay(profile, topology, CostModel())
    abs_residuals = [
        abs(r.residual_us) for r in calibrated_rows if r.residual_us is not None
    ]
    return CalibrationResult(
        model=model,
        n_steps=len(measured),
        mae_default_us=_mae(default_rows),
        mae_calibrated_us=_mae(calibrated_rows),
        max_abs_residual_us=float(max(abs_residuals)) if abs_residuals else 0.0,
        rows=calibrated_rows,
    )


def load_model(path: str) -> CalibratedCostModel:
    """Load a fitted model from a ``PROFILE.json`` written by
    ``python -m repro profile`` (or from a bare calibration dict)."""
    with open(path, "r", encoding="utf-8") as fh:
        data: Any = json.load(fh)
    if isinstance(data, dict) and "calibration" in data:
        data = data["calibration"]
    if isinstance(data, dict) and "model" in data:
        data = data["model"]
    if not isinstance(data, dict) or "alpha_us" not in data:
        raise ValueError(
            f"{path}: no fitted cost model found (expected a PROFILE.json "
            "with a top-level 'calibration' section)"
        )
    return CalibratedCostModel.from_json(data)
