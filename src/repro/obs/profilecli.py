"""``python -m repro profile`` -- measure, compare, and calibrate.

Runs one or more built-in SPMD programs (the same set as ``python -m
repro trace``) on either backend with a :class:`ProfileCollector`
attached, prints a per-superstep predicted-vs-measured table
(:func:`repro.viz.tables.render_profile`), least-squares-fits the cost
model to the measured wall-times (:func:`repro.obs.calibrate.fit`), and
writes everything -- per-program profiles plus the fitted model -- to a
``PROFILE.json`` that ``python -m repro costs --calibrated`` and
:func:`repro.obs.calibrate.load_model` consume.

Examples::

    python -m repro profile copy --backend inprocess
    python -m repro profile copy redistribute --backend mp --p 4
    python -m repro profile redistribute --topology hypercube --p 8 \\
        --out PROFILE.json --prom metrics.prom
"""

from __future__ import annotations

import argparse
import json
import sys

from . import Observability, set_ambient
from .cli import PROGRAMS, run_program
from .profile import ProfileCollector

__all__ = ["main"]

#: CLI topology names -> constructor (p -> Topology).
_TOPOLOGIES = ("crossbar", "hypercube", "ring")


def _make_topology(name: str, p: int):
    from ..machine.topology import (
        CrossbarTopology,
        HypercubeTopology,
        RingTopology,
    )

    if name == "crossbar":
        return CrossbarTopology(p)
    if name == "ring":
        return RingTopology(p)
    dim = p.bit_length() - 1
    if 1 << dim != p:
        raise SystemExit(
            f"--topology hypercube needs a power-of-two --p, got {p}"
        )
    return HypercubeTopology(dim)


def _profile_rows(profile, topology, model) -> list[dict]:
    """Merge default and (optional) calibrated replays into
    :func:`render_profile` rows."""
    from .calibrate import replay

    default_rows = replay(profile, topology)
    calibrated_rows = replay(profile, topology, model) if model else None
    rows = []
    for i, r in enumerate(default_rows):
        row = r.to_json()
        if calibrated_rows is not None:
            row["calibrated_us"] = calibrated_rows[i].predicted_us
        rows.append(row)
    return rows


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro profile",
        description=__doc__,
        formatter_class=argparse.RawDescriptionHelpFormatter,
    )
    parser.add_argument(
        "programs", nargs="+", choices=sorted(PROGRAMS),
        help="programs to profile, each on a fresh machine",
    )
    parser.add_argument(
        "--backend", default="inprocess", choices=("inprocess", "oracle", "mp"),
        help="execution backend ('oracle' is an alias for 'inprocess')",
    )
    parser.add_argument("--p", type=int, default=4, help="ranks (default 4)")
    parser.add_argument("--n", type=int, default=240, help="elements (default 240)")
    parser.add_argument("--k-src", type=int, default=3, help="source block size")
    parser.add_argument("--k-dst", type=int, default=7, help="dest block size")
    parser.add_argument("--repeat", type=int, default=2,
                        help="statement repetitions per program")
    parser.add_argument("--seed", type=int, default=0,
                        help="recorded in the profile metadata")
    parser.add_argument(
        "--topology", default="crossbar", choices=_TOPOLOGIES,
        help="topology to price against (crossbar default: any p)",
    )
    parser.add_argument("--out", default="PROFILE.json", metavar="PATH",
                        help="profile + calibration output (default PROFILE.json)")
    parser.add_argument("--prom", default=None, metavar="PATH",
                        help="also dump the metrics registry as Prometheus "
                             "exposition text ('-' for stdout)")
    parser.add_argument("--quiet", action="store_true",
                        help="suppress the per-superstep tables")
    parser.add_argument(
        "--require-traffic", action="store_true",
        help="exit 1 unless every program measured nonzero sent bytes "
             "(the CI guard against silently-unattached collectors)",
    )
    args = parser.parse_args(argv)

    backend = "inprocess" if args.backend == "oracle" else args.backend
    topology = _make_topology(args.topology, args.p)

    from ..machine.iface import create_machine
    from ..viz.tables import render_profile
    from .calibrate import fit
    from .profile import RunProfile

    profiles: dict[str, RunProfile] = {}
    for name in args.programs:
        # Fresh obs handle + machine per program so superstep numbers,
        # span rings, and counter deltas never bleed across programs.
        obs = Observability(enabled=True)
        previous = set_ambient(obs)
        machine = create_machine(args.p, backend, obs=obs)
        collector = ProfileCollector()
        try:
            with collector.attach(machine):
                run_program(name, machine, args)
            profiles[name] = collector.build(
                program=name, seed=args.seed, n=args.n,
                k_src=args.k_src, k_dst=args.k_dst, repeat=args.repeat,
                topology=args.topology,
            )
        finally:
            set_ambient(previous)
            machine.close()

    if args.require_traffic:
        silent = [n for n, pr in profiles.items() if pr.total_sent_bytes == 0]
        if silent:
            print(
                f"profile: no traffic measured for {', '.join(silent)} "
                f"(collector unattached?)",
                file=sys.stderr,
            )
            return 1

    # Calibrate on the pooled measured supersteps: the fit only consumes
    # per-channel triples and wall-times, so step numbers may repeat
    # across programs.
    pooled = RunProfile(
        p=args.p,
        backend=backend,
        supersteps=[sp for pr in profiles.values() for sp in pr.supersteps],
    )
    calibration = None
    if pooled.measured_steps:
        calibration = fit(pooled, topology)

    for name, pr in profiles.items():
        rows = _profile_rows(
            pr, topology, calibration.model if calibration else None
        )
        if not args.quiet:
            print(render_profile(rows, title=f"{name} ({pr.backend}, p={pr.p})"))
            print()

    if calibration is not None and not args.quiet:
        m = calibration.model
        print(
            f"calibrated over {calibration.n_steps} supersteps: "
            f"alpha={m.alpha_us:.1f}us beta={m.beta_us_per_byte:.4f}us/B "
            f"gamma={m.gamma_us_per_hop:.1f}us/hop fixed={m.fixed_us:.1f}us"
        )
        print(
            f"mean |residual|: default {calibration.mae_default_us:.1f}us "
            f"-> calibrated {calibration.mae_calibrated_us:.1f}us"
        )

    document = {
        "backend": backend,
        "p": args.p,
        "topology": args.topology,
        "programs": {name: pr.to_json() for name, pr in profiles.items()},
        "calibration": calibration.to_json() if calibration else None,
    }
    with open(args.out, "w", encoding="utf-8") as fh:
        json.dump(document, fh, indent=2, sort_keys=True)
        fh.write("\n")
    if not args.quiet:
        total = sum(pr.total_sent_bytes for pr in profiles.values())
        print(f"wrote {args.out} ({len(profiles)} program(s), {total} bytes sent)")

    if args.prom:
        # One-shot scrape body over the *last* program's registry would
        # be misleading; re-render from each profile's counter deltas
        # instead so the dump covers the whole invocation.
        from .promexport import prometheus_text

        merged: dict[str, int] = {}
        for pr in profiles.values():
            for cname, value in pr.counters.items():
                merged[cname] = merged.get(cname, 0) + value
        text = prometheus_text({"counters": merged})
        if args.prom == "-":
            sys.stdout.write(text)
        else:
            with open(args.prom, "w", encoding="utf-8") as fh:
                fh.write(text)
    return 0


if __name__ == "__main__":  # pragma: no cover - exercised via python -m repro
    raise SystemExit(main())
