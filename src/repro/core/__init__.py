"""The paper's primary contribution: lattice-based access sequences.

Public surface of the core algorithm family:

* :func:`compute_access_table` -- the linear-time algorithm (Figure 5);
* :func:`compute_offset_tables` -- offset-indexed variant for node code 8(d);
* :func:`compute_rl_basis` / :class:`SectionLattice` -- the integer-lattice
  theory of Sections 3-4;
* :mod:`repro.core.baselines` -- Chatterjee sorting, Hiranandani special
  case, and the brute-force oracle;
* :class:`RLCursor` and the ``iter_*`` generators -- table-free address
  generation (Section 6.2);
* counting / bounds helpers for the upper-bound handling the table
  itself factors out.
"""

from .access import AccessTable, StartInfo, compute_access_table, start_location
from .counting import (
    last_location,
    local_allocation_size,
    local_count,
    owner_histogram,
    section_length,
)
from .diagonal import DiagonalAccess, diagonal_iterations
from .euclid import ExtendedGcd, extended_gcd, gcd, lcm, mod_inverse
from .fsm import AccessFSM, Transition
from .kernels import (
    expand_table,
    local_addresses_of,
    local_slots_of,
    owners_of,
    periodic_floor_rank_of,
    periodic_rank_of,
)
from .multidim import compose_flat_addresses, odometer_addresses, row_major_strides
from .generator import RLCursor, iter_global_indices, iter_local_addresses
from .lattice import (
    LatticePoint,
    RLBasis,
    SectionLattice,
    compute_rl_basis,
    is_basis,
    is_primitive_vector,
)
from .offsets import OffsetTables, compute_offset_tables

__all__ = [
    "AccessTable",
    "StartInfo",
    "compute_access_table",
    "start_location",
    "OffsetTables",
    "compute_offset_tables",
    "LatticePoint",
    "RLBasis",
    "SectionLattice",
    "compute_rl_basis",
    "is_basis",
    "is_primitive_vector",
    "RLCursor",
    "iter_global_indices",
    "iter_local_addresses",
    "AccessFSM",
    "Transition",
    "DiagonalAccess",
    "diagonal_iterations",
    "compose_flat_addresses",
    "odometer_addresses",
    "row_major_strides",
    "expand_table",
    "owners_of",
    "local_addresses_of",
    "local_slots_of",
    "periodic_rank_of",
    "periodic_floor_rank_of",
    "ExtendedGcd",
    "extended_gcd",
    "gcd",
    "lcm",
    "mod_inverse",
    "local_count",
    "last_location",
    "owner_histogram",
    "local_allocation_size",
    "section_length",
]
