"""Multidimensional access sequences by per-dimension composition.

Paper, Section 2: "In multidimensional arrays, alignments and
distributions of each dimension are independent of one another.  If a
multidimensional array section can be described using Fortran 90
subscript triplet notation ... then the memory access problem simply
reduces to multiple applications of the algorithm for the
one-dimensional case."

This module performs that reduction *vectorized*: each dimension's 1-D
algorithm produces its local slot vector, and the flat addresses of the
full section on a row-major local array are the broadcast sum

    addr[i1, ..., id] = sum_d slot_d[i_d] * stride_d

computed with NumPy outer addition -- one allocation, no Python-level
odometer loop (the idiom the project's HPC guides prescribe).
"""

from __future__ import annotations

import numpy as np

__all__ = ["compose_flat_addresses", "row_major_strides", "odometer_addresses"]


def row_major_strides(shape: tuple[int, ...]) -> tuple[int, ...]:
    """Element strides of a row-major array of the given shape."""
    if any(extent < 0 for extent in shape):
        raise ValueError(f"extents must be nonnegative, got {shape}")
    strides = [1] * len(shape)
    for d in range(len(shape) - 2, -1, -1):
        strides[d] = strides[d + 1] * shape[d + 1]
    return tuple(strides)


def compose_flat_addresses(
    per_dim_slots: list[np.ndarray] | list[list[int]],
    local_shape: tuple[int, ...],
) -> np.ndarray:
    """Flat local addresses of the cross product of per-dimension slots.

    ``per_dim_slots[d]`` holds dimension ``d``'s local slots in traversal
    order (from the 1-D access algorithm); the result enumerates the
    section in odometer order (last dimension fastest) as one int64
    vector, ready for fancy-indexed loads/stores.
    """
    if len(per_dim_slots) != len(local_shape):
        raise ValueError(
            f"need one slot vector per dimension: {len(local_shape)} dims, "
            f"{len(per_dim_slots)} vectors"
        )
    if not per_dim_slots:
        raise ValueError("need at least one dimension")
    strides = row_major_strides(local_shape)
    total = 1
    arrays = []
    for slots, stride, extent in zip(per_dim_slots, strides, local_shape):
        vec = np.asarray(slots, dtype=np.int64)
        if vec.ndim != 1:
            raise ValueError("slot vectors must be one-dimensional")
        if vec.size and (vec.min() < 0 or vec.max() >= extent):
            raise ValueError(
                f"slots out of range [0, {extent}): "
                f"[{vec.min()}, {vec.max()}]"
            )
        arrays.append(vec * stride)
        total *= vec.size
    if total == 0:
        return np.empty(0, dtype=np.int64)
    # Broadcast-sum: addr = a0[:,None,...] + a1[None,:,...] + ...
    acc = arrays[0]
    for vec in arrays[1:]:
        acc = acc[..., None] + vec
    return acc.reshape(total)


def odometer_addresses(
    per_dim_slots: list[list[int]], local_shape: tuple[int, ...]
) -> list[int]:
    """Reference implementation of :func:`compose_flat_addresses` using an
    explicit odometer loop; kept as the oracle the vectorized version is
    tested against (and as readable documentation of the semantics)."""
    if len(per_dim_slots) != len(local_shape):
        raise ValueError("need one slot vector per dimension")
    strides = row_major_strides(local_shape)
    out: list[int] = []

    def recurse(d: int, base: int) -> None:
        if d == len(per_dim_slots):
            out.append(base)
            return
        for slot in per_dim_slots[d]:
            recurse(d + 1, base + slot * strides[d])

    if per_dim_slots:
        recurse(0, 0)
    return out
