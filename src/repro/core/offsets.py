"""Offset-indexed tables for node-code shape 8(d) (Section 6.2).

The ΔM table produced by Figure 5 is indexed by *visit order*: entry 0
is the gap taken from the starting location, whatever block offset that
happens to be.  The two-table node code of Figure 8(d), by contrast,
indexes by **local offset**: ``deltaM[o]`` is the gap leaving the
element at local offset ``o`` and ``NextOffset[o]`` is the local offset
the walk lands on.  The paper's Section 6.2 gives the modified loop body

    AM[offset - k*m]         = a_r*k + b_r
    NextOffset[offset - k*m] = offset - k*m + b_r
    offset                   = offset + b_r

(and the analogous changes for Equations 2 and 3).  The start slot is
``startoffset = start mod k``.
"""

from __future__ import annotations

from dataclasses import dataclass

from .access import start_location
from .euclid import extended_gcd
from .lattice import compute_rl_basis

__all__ = ["OffsetTables", "compute_offset_tables"]

#: Sentinel stored in unvisited slots of the offset-indexed tables.
UNUSED = -1


@dataclass(frozen=True, slots=True)
class OffsetTables:
    """Local-offset-indexed access tables for node code 8(d).

    ``delta_m[o]`` / ``next_offset[o]`` are only meaningful for offsets
    the walk visits; unvisited slots hold :data:`UNUSED`.  ``length`` is
    the number of visited offsets (the cycle length) and
    ``start_offset`` the local offset of the starting location
    (``start mod k``).
    """

    p: int
    k: int
    l: int
    s: int
    m: int
    start: int | None
    start_offset: int | None
    length: int
    delta_m: tuple[int, ...]
    next_offset: tuple[int, ...]

    @property
    def start_local(self) -> int | None:
        if self.start is None:
            return None
        pk = self.p * self.k
        row, b = divmod(self.start, pk)
        return row * self.k + (b - self.k * self.m)

    def local_addresses(self, count: int) -> list[int]:
        """First ``count`` local addresses, walked through the tables."""
        if count < 0:
            raise ValueError(f"count must be nonnegative, got {count}")
        if self.start is None:
            if count:
                raise ValueError("processor owns no section elements")
            return []
        out = []
        addr = self.start_local
        o = self.start_offset
        for _ in range(count):
            out.append(addr)
            addr += self.delta_m[o]
            o = self.next_offset[o]
        return out


def compute_offset_tables(p: int, k: int, l: int, s: int, m: int) -> OffsetTables:
    """Figure 5 with the Section 6.2 modifications for code shape 8(d)."""
    if s <= 0:
        raise ValueError(f"stride must be positive, got s={s}")
    pk = p * k
    d, _, _ = extended_gcd(s, pk)

    info = start_location(p, k, l, s, m)
    start, length = info.start, info.length
    if length == 0:
        return OffsetTables(p, k, l, s, m, None, None, 0, (), ())
    start_offset = start % k
    delta_m = [UNUSED] * k
    next_offset = [UNUSED] * k
    if length == 1:
        delta_m[start_offset] = k * s // d
        next_offset[start_offset] = start_offset
        return OffsetTables(
            p, k, l, s, m, start, start_offset, 1,
            tuple(delta_m), tuple(next_offset),
        )

    basis = compute_rl_basis(p, k, s)
    (br, ar), (bl, al) = basis.r.vector, basis.l.vector
    gap_r = ar * k + br
    gap_l = -(al * k + bl)

    offset = start % pk
    lo, hi = k * m, k * (m + 1)
    i = 0
    while i < length:
        while i < length and offset + br < hi:
            slot = offset - lo
            delta_m[slot] = gap_r
            next_offset[slot] = slot + br
            offset += br
            i += 1
        if i == length:
            break
        slot = offset - lo
        gap = gap_l
        new_offset = offset - bl
        if new_offset < lo:
            gap += gap_r
            new_offset += br
        delta_m[slot] = gap
        next_offset[slot] = new_offset - lo
        offset = new_offset
        i += 1

    return OffsetTables(
        p, k, l, s, m, start, start_offset, length,
        tuple(delta_m), tuple(next_offset),
    )
