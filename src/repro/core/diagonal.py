"""Diagonal array sections -- the paper's Section 8 future-work item.

The paper closes: "Some of the problems that require investigation are
compiling programs that access diagonal or trapezoidal array sections
... in the presence of cyclic(k) distributions."  This module provides
that extension for two-dimensional arrays: the access

    A(r0 + t*rs,  c0 + t*cs)      for t = 0 .. count-1

(a generalized diagonal: ``rs = cs = 1`` is the main diagonal,
``rs = 1, cs = -1`` an anti-diagonal) touches, on each processor, the
iterations ``t`` whose row *and* column land in that processor's blocks.

Ownership along one dimension is periodic in ``t`` with period
``pk/gcd(step, pk)`` (the 1-D theory), so the owned ``t``-set per
dimension is a union of arithmetic progressions; the processor's
diagonal iterations are the CRT intersections of one progression from
each dimension -- computed here with :func:`repro.core.euclid.crt_pair`
in O(k_row * k_col) per processor, independent of ``count``.

A brute-force enumerator is included as the test oracle.
"""

from __future__ import annotations

from dataclasses import dataclass

from .euclid import crt_pair, extended_gcd

__all__ = ["DiagonalAccess", "diagonal_iterations", "diagonal_iterations_brute"]


@dataclass(frozen=True, slots=True)
class DiagonalAccess:
    """The access ``A(r0 + t*rs, c0 + t*cs)``, ``t in [0, count)``.

    Distribution parameters per dimension: ``(p_row, k_row)`` and
    ``(p_col, k_col)``; the owning processor of iteration ``t`` is the
    grid coordinate pair of its row and column owners.
    """

    p_row: int
    k_row: int
    p_col: int
    k_col: int
    r0: int
    rs: int
    c0: int
    cs: int
    count: int

    def __post_init__(self) -> None:
        for name, value in (("p_row", self.p_row), ("k_row", self.k_row),
                            ("p_col", self.p_col), ("k_col", self.k_col)):
            if value <= 0:
                raise ValueError(f"{name} must be positive, got {value}")
        if self.rs == 0 and self.cs == 0:
            raise ValueError("at least one of rs, cs must be nonzero")
        if self.count < 0:
            raise ValueError(f"count must be nonnegative, got {self.count}")

    def row(self, t: int) -> int:
        return self.r0 + t * self.rs

    def col(self, t: int) -> int:
        return self.c0 + t * self.cs


def _owned_progressions(
    p: int, k: int, start: int, step: int, m: int
) -> list[tuple[int, int]]:
    """Arithmetic progressions of ``t`` with ``start + t*step`` owned by
    coordinate ``m`` under ``cyclic(k)`` over ``p``.

    Returns ``(base, period)`` pairs with ``0 <= base < period``; the
    owned set is the union of ``{base, base+period, ...}``.  ``step``
    may be negative or zero (zero: ownership is t-independent, returning
    ``(0, 1)`` when owned and nothing otherwise).
    """
    pk = p * k
    lo, hi = k * m, k * (m + 1)
    if step == 0:
        return [(0, 1)] if lo <= start % pk < hi else []
    d, x, _ = extended_gcd(step, pk)
    period = pk // d
    out = []
    # t*step ≡ c - start (mod pk) for each block offset c of processor m.
    delta0 = lo - start
    first = delta0 + (-delta0) % d
    for delta in range(first, hi - start, d):
        base = (delta // d) * x % period
        out.append((base, period))
    return out


def diagonal_iterations(access: DiagonalAccess, coords: tuple[int, int]) -> list[int]:
    """All iterations ``t`` whose element is owned by grid coordinates
    ``(row_coord, col_coord)``, ascending.

    CRT-intersects the row-owned and column-owned progressions; cost is
    O(k_row * k_col + result) independent of ``count``.
    """
    mr, mc = coords
    if not 0 <= mr < access.p_row:
        raise ValueError(f"row coordinate {mr} out of range [0, {access.p_row})")
    if not 0 <= mc < access.p_col:
        raise ValueError(f"col coordinate {mc} out of range [0, {access.p_col})")
    rows = _owned_progressions(
        access.p_row, access.k_row, access.r0, access.rs, mr
    )
    cols = _owned_progressions(
        access.p_col, access.k_col, access.c0, access.cs, mc
    )
    out: list[int] = []
    for rb, rp in rows:
        for cb, cp in cols:
            merged = crt_pair(rb, rp, cb, cp)
            if merged is None:
                continue
            base, period = merged
            if base < access.count:
                out.extend(range(base, access.count, period))
    out.sort()
    return out


def diagonal_iterations_brute(
    access: DiagonalAccess, coords: tuple[int, int]
) -> list[int]:
    """O(count) oracle for :func:`diagonal_iterations`."""
    mr, mc = coords
    pk_r = access.p_row * access.k_row
    pk_c = access.p_col * access.k_col
    out = []
    for t in range(access.count):
        row_off = access.row(t) % pk_r
        col_off = access.col(t) % pk_c
        if (
            access.k_row * mr <= row_off < access.k_row * (mr + 1)
            and access.k_col * mc <= col_off < access.k_col * (mc + 1)
        ):
            out.append(t)
    return out
