"""The integer lattice of regular-section accesses (paper Sections 3-4).

Treat each array element as a point in the plane: the x-axis is the
offset of the element within its row of ``p*k`` template cells, the
y-axis is the row number.  For a section with stride ``s`` (and, w.l.o.g.,
lower bound 0 -- Theorem 1 shows the lattice is independent of ``l``),
the set

    A = {(b, a) in Z^2 : p*k*a + b = i*s  for some integer i}

is an integer lattice (Theorem 1).  This module provides:

* :class:`LatticePoint` -- a point together with its section index ``i``;
* primitive/basis predicates (``is_primitive_vector``,
  ``is_basis`` -- the ``|a1*i2 - a2*i1| = 1`` determinant test);
* a generic basis construction via the extended Euclid's algorithm;
* the **R/L basis** of Section 4 (:func:`compute_rl_basis`): ``R`` is the
  lattice point with the smallest positive section index whose offset
  lies in ``(0, k)``; ``L`` corresponds to the largest index of the
  initial cycle taken relative to the first point of the next cycle.
  Theorem 2 proves ``{R, L}`` is a basis; Theorem 3 proves the step
  between consecutive local accesses is always ``R``, ``-L`` or ``R-L``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, NamedTuple

from .euclid import extended_gcd, gcd

__all__ = [
    "LatticePoint",
    "SectionLattice",
    "RLBasis",
    "compute_rl_basis",
    "is_primitive_vector",
    "is_basis",
]


@dataclass(frozen=True, slots=True)
class LatticePoint:
    """A lattice point ``(b, a)`` with ``p*k*a + b == i*s``.

    ``b`` is the offset coordinate (x-axis), ``a`` the row coordinate
    (y-axis) and ``i`` the regular-section index the point corresponds
    to (the element is the ``i``-th element of the section).
    """

    b: int
    a: int
    i: int

    def __add__(self, other: "LatticePoint") -> "LatticePoint":
        return LatticePoint(self.b + other.b, self.a + other.a, self.i + other.i)

    def __sub__(self, other: "LatticePoint") -> "LatticePoint":
        return LatticePoint(self.b - other.b, self.a - other.a, self.i - other.i)

    def __neg__(self) -> "LatticePoint":
        return LatticePoint(-self.b, -self.a, -self.i)

    def scale(self, t: int) -> "LatticePoint":
        return LatticePoint(self.b * t, self.a * t, self.i * t)

    @property
    def vector(self) -> tuple[int, int]:
        """The geometric ``(b, a)`` pair, as printed in the paper."""
        return (self.b, self.a)


class RLBasis(NamedTuple):
    """The Section-4 basis.  ``r.a >= 0`` and ``l.a <= 0`` by construction."""

    r: LatticePoint
    l: LatticePoint


def is_primitive_vector(point: LatticePoint) -> bool:
    """True when no other lattice point lies strictly between the origin
    and ``point`` -- equivalently ``gcd(a, i) == 1`` (Section 3)."""
    return gcd(point.a, point.i) == 1


def is_basis(p1: LatticePoint, p2: LatticePoint) -> bool:
    """Determinant test of Section 3: ``|a1*i2 - a2*i1| == 1``."""
    return abs(p1.a * p2.i - p2.a * p1.i) == 1


class SectionLattice:
    """The lattice ``A`` for distribution parameters ``(p, k)`` and stride ``s``.

    The lattice does not depend on the section lower bound (Theorem 1),
    so only ``p``, ``k`` and ``s`` parameterize it.
    """

    def __init__(self, p: int, k: int, s: int) -> None:
        if p <= 0 or k <= 0:
            raise ValueError(f"need p > 0 and k > 0, got p={p}, k={k}")
        if s <= 0:
            raise ValueError(
                f"stride must be positive, got {s}; normalize the section first"
            )
        self.p = p
        self.k = k
        self.s = s
        self.row_length = p * k
        self.d = gcd(s, self.row_length)

    def point(self, i: int) -> LatticePoint:
        """The lattice point for section index ``i`` (element ``i*s``)."""
        idx = i * self.s
        return LatticePoint(idx % self.row_length, idx // self.row_length, i)

    def contains(self, b: int, a: int) -> bool:
        """Membership: ``(b, a)`` in ``A`` iff ``p*k*a + b ≡ 0 (mod s)``
        and the quotient is integral."""
        value = self.row_length * a + b
        return value % self.s == 0

    def index_of(self, b: int, a: int) -> int:
        """Section index ``i`` of a member point; raises if not a member."""
        value = self.row_length * a + b
        if value % self.s != 0:
            raise ValueError(f"({b}, {a}) is not in the lattice")
        return value // self.s

    def euclid_basis(self) -> tuple[LatticePoint, LatticePoint]:
        """Generic basis from Section 3's constructive method.

        First vector: ``i1 = 1`` giving ``(s mod pk, s div pk)``, which is
        primitive since ``gcd(a1, 1) == 1``.  Second vector from Bezout
        coefficients with ``a1*i2 - a2*i1 == 1``.
        """
        pk = self.row_length
        a1 = self.s // pk
        b1 = self.s % pk
        first = LatticePoint(b1, a1, 1)
        # Find i2, a2 with a1*i2 - a2*1 = 1  =>  a2 = a1*i2 - 1, any i2.
        # Choose i2 = 1 => a2 = a1 - 1; b2 = i2*s - pk*a2.
        i2 = 1
        a2 = a1 * i2 - 1
        b2 = i2 * self.s - pk * a2
        second = LatticePoint(b2, a2, i2)
        assert is_basis(first, second)
        return first, second

    def iter_initial_cycle(self, processor: int | None = None) -> Iterator[LatticePoint]:
        """Yield the lattice points of the initial cycle in index order.

        The cycle contains indices ``i = 0 .. pk/d - 1`` (after which the
        offset pattern repeats, shifted by ``s/d`` rows).  When
        ``processor`` is given, only points whose offset falls in that
        processor's block range ``[k*m, k*(m+1))`` are yielded.  This is
        an O(pk/d) enumeration used by tests and diagrams, not by the
        linear-time algorithm itself.
        """
        lo = hi = None
        if processor is not None:
            if not 0 <= processor < self.p:
                raise ValueError(f"processor {processor} out of range [0, {self.p})")
            lo, hi = self.k * processor, self.k * (processor + 1)
        for i in range(self.row_length // self.d):
            pt = self.point(i)
            if lo is None or lo <= pt.b < hi:
                yield pt


def compute_rl_basis(p: int, k: int, s: int) -> RLBasis:
    """Compute the Section-4 basis vectors ``R`` and ``L``.

    ``R = (b_r, a_r)`` is the lattice point with the smallest positive
    section index ``i_r`` whose offset satisfies ``0 <= b_r < k`` (the
    smallest positive access on processor 0).  ``L = (b_l, a_l)`` is
    taken from the *largest* index of the initial cycle with offset in
    ``[0, k)``, relative to the first point of the next cycle (index
    ``pk*s/d`` at coordinates ``(0, s/d)``), hence ``a_l <= 0`` and its
    section index ``i_l < 0``.

    This mirrors lines 19-30 of Figure 5, including the simplification
    the paper describes: solvable offsets are exactly the multiples of
    ``d = gcd(s, pk)`` and are visited directly.

    Raises :class:`ValueError` when the lattice degenerates to a single
    generator (``pk | s``) or when no positive offset in ``(0, k)`` is
    solvable (cycle length <= 1 on processor 0) -- callers handle those
    as the paper's special cases.
    """
    if p <= 0 or k <= 0 or s <= 0:
        raise ValueError(f"need positive p, k, s; got p={p}, k={k}, s={s}")
    pk = p * k
    d, x, _ = extended_gcd(s, pk)
    if s % pk == 0:
        raise ValueError(
            "pk divides s: the lattice is generated by a single vector "
            "(every access lands on offset 0); handle as a special case"
        )
    period = pk // d
    smallest: int | None = None
    largest: int | None = None
    # Offsets in (0, k) with solutions are d, 2d, ...; for each, the
    # smallest positive index is ((i/d)*x mod period) * s.
    for offset in range(d, k, d):
        j = (offset // d) * x % period
        if j == 0:
            j = period  # index 0 is the origin; take the next occurrence
        loc = j * s
        if smallest is None or loc < smallest:
            smallest = loc
        if largest is None or loc > largest:
            largest = loc
    if smallest is None:
        raise ValueError(
            f"no solvable offset in (0, {k}) for s={s}, pk={pk} (d={d}); "
            "cycle length is <= 1 on processor 0 -- special case"
        )
    r = LatticePoint(smallest % pk, smallest // pk, smallest // s)
    # First point of the next cycle: index pk*s/d at (0, s/d).
    l = LatticePoint(largest % pk, largest // pk - s // d, largest // s - pk // d)
    return RLBasis(r, l)
