"""Integer number theory used by the access-sequence algorithms.

This module implements the extended Euclid's algorithm and the linear
congruence / Diophantine machinery that both the lattice algorithm
(Kennedy, Nedeljkovic & Sethi, PPoPP '95, Figure 5 line 3) and the
sorting baseline (Chatterjee et al., PPoPP '93) share.  The paper's
Section 2 reduces the start-location problem to solving the family

    s * j - p*k * q = i        for i in [k*m - l, k*m - l + k)

which has solutions iff gcd(s, p*k) divides i; the smallest nonnegative
``j`` is obtained from the Bezout coefficient of ``s``.

All functions operate on plain Python integers (arbitrary precision) so
they remain exact for any distribution parameters.
"""

from __future__ import annotations

from typing import NamedTuple

__all__ = [
    "ExtendedGcd",
    "extended_gcd",
    "gcd",
    "lcm",
    "mod_inverse",
    "CongruenceSolution",
    "solve_linear_congruence",
    "smallest_nonnegative_solution",
    "DiophantineSolution",
    "solve_linear_diophantine",
    "crt_pair",
    "ceil_div",
    "floor_div",
]


class ExtendedGcd(NamedTuple):
    """Result of the extended Euclid's algorithm: ``a*x + b*y == g``."""

    g: int
    x: int
    y: int


def extended_gcd(a: int, b: int) -> ExtendedGcd:
    """Return ``(g, x, y)`` with ``g = gcd(a, b)`` and ``a*x + b*y == g``.

    ``g`` is nonnegative.  This is the EXTENDED-EUCLID call in line 3 of
    the paper's Figure 5, with ``a = s`` and ``b = p*k``.

    >>> extended_gcd(9, 32)
    ExtendedGcd(g=1, x=-7, y=2)
    """
    old_r, r = a, b
    old_x, x = 1, 0
    old_y, y = 0, 1
    while r != 0:
        q = old_r // r
        old_r, r = r, old_r - q * r
        old_x, x = x, old_x - q * x
        old_y, y = y, old_y - q * y
    if old_r < 0:
        old_r, old_x, old_y = -old_r, -old_x, -old_y
    return ExtendedGcd(old_r, old_x, old_y)


def gcd(a: int, b: int) -> int:
    """Nonnegative greatest common divisor (``gcd(0, 0) == 0``)."""
    while b:
        a, b = b, a % b
    return abs(a)


def lcm(a: int, b: int) -> int:
    """Least common multiple; ``lcm(x, 0) == 0``."""
    if a == 0 or b == 0:
        return 0
    return abs(a // gcd(a, b) * b)


def mod_inverse(a: int, n: int) -> int:
    """Inverse of ``a`` modulo ``n`` in ``[0, n)``.

    Raises :class:`ValueError` when ``gcd(a, n) != 1`` or ``n <= 0``.
    """
    if n <= 0:
        raise ValueError(f"modulus must be positive, got {n}")
    g, x, _ = extended_gcd(a, n)
    if g != 1:
        raise ValueError(f"{a} is not invertible modulo {n} (gcd={g})")
    return x % n


class CongruenceSolution(NamedTuple):
    """Solutions of ``a*j ≡ c (mod n)``: ``j = base + t*period``, t ∈ Z."""

    base: int
    period: int


def solve_linear_congruence(a: int, c: int, n: int) -> CongruenceSolution | None:
    """Solve ``a*j ≡ c (mod n)`` for ``j``.

    Returns the smallest nonnegative solution ``base`` and the solution
    ``period`` (``n // gcd(a, n)``), or ``None`` when no solution exists
    (i.e. when ``gcd(a, n)`` does not divide ``c``).
    """
    if n <= 0:
        raise ValueError(f"modulus must be positive, got {n}")
    g, x, _ = extended_gcd(a, n)
    if c % g != 0:
        return None
    period = n // g
    base = (c // g) * x % period
    return CongruenceSolution(base, period)


def smallest_nonnegative_solution(a: int, c: int, n: int) -> int | None:
    """Smallest ``j >= 0`` with ``a*j ≡ c (mod n)``, or ``None``."""
    sol = solve_linear_congruence(a, c, n)
    return None if sol is None else sol.base


class DiophantineSolution(NamedTuple):
    """Solutions of ``a*x + b*y == c``.

    The full solution set is ``x = x0 + t*step_x``, ``y = y0 - t*step_y``
    for integer ``t``, with ``step_x = b // g`` and ``step_y = a // g``.
    """

    x0: int
    y0: int
    step_x: int
    step_y: int


def solve_linear_diophantine(a: int, b: int, c: int) -> DiophantineSolution | None:
    """General solution of ``a*x + b*y == c`` or ``None`` if unsolvable.

    When ``a == b == 0`` the equation is solvable only for ``c == 0``
    (with every ``(x, y)``; we return the zero solution with zero steps).
    """
    if a == 0 and b == 0:
        return DiophantineSolution(0, 0, 0, 0) if c == 0 else None
    g, x, y = extended_gcd(a, b)
    if c % g != 0:
        return None
    scale = c // g
    return DiophantineSolution(x * scale, y * scale, b // g, a // g)


def crt_pair(r1: int, n1: int, r2: int, n2: int) -> CongruenceSolution | None:
    """Combine ``j ≡ r1 (mod n1)`` and ``j ≡ r2 (mod n2)``.

    Returns the combined congruence (smallest nonnegative representative
    and modulus ``lcm(n1, n2)``) or ``None`` when incompatible.  Used by
    the communication-set machinery to intersect ownership windows.
    """
    if n1 <= 0 or n2 <= 0:
        raise ValueError("moduli must be positive")
    g, x, _ = extended_gcd(n1, n2)
    if (r2 - r1) % g != 0:
        return None
    m = n1 // g * n2
    t = (r2 - r1) // g * x % (n2 // g)
    return CongruenceSolution((r1 + n1 * t) % m, m)


def ceil_div(a: int, b: int) -> int:
    """Ceiling division for integers with positive divisor semantics.

    Matches the ``ceil`` the paper uses in Figure 5 line 7; works for
    negative ``a`` and ``b`` like mathematical ceiling of ``a / b``.
    """
    if b == 0:
        raise ZeroDivisionError("ceil_div by zero")
    return -((-a) // b)


def floor_div(a: int, b: int) -> int:
    """Mathematical floor of ``a / b`` (Python's ``//`` already floors)."""
    if b == 0:
        raise ZeroDivisionError("floor_div by zero")
    return a // b
