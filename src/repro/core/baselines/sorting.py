"""The sorting-based algorithm of Chatterjee et al. (PPoPP '93).

For each block offset of processor ``m``, solve the linear Diophantine
equation for the smallest section element landing on that offset (these
are the same solutions the lattice algorithm's start-location scan
computes); then **sort** the resulting indices to obtain the access
order and scan once to produce the memory-gap table.  The sort makes
this ``O(k log k + min(log s, log p))`` -- the term the lattice method
removes.

Per the paper's Section 6.1, their implementation switched to a
linear-time LSD radix sort for ``k >= 64``; both sorts are provided here
and the dispatch threshold mirrors the paper (``radix_threshold=64``).
The segments shared with the lattice algorithm (extended Euclid and the
per-offset solution loop) are coded identically to
:func:`repro.core.access.start_location`, as the paper did for its
timing comparison.
"""

from __future__ import annotations

from ..access import AccessTable
from ..euclid import extended_gcd

__all__ = ["sorting_access_table", "lsd_radix_sort"]

#: Block size at and above which the radix sort is used, following the
#: paper's note that the comparison implementation used radix for k >= 64.
RADIX_THRESHOLD = 64


def lsd_radix_sort(values: list[int], *, radix_bits: int = 8) -> list[int]:
    """Stable LSD radix sort of nonnegative integers.

    Linear in ``len(values)`` times the number of ``radix_bits``-wide
    digits of the maximum value.  Used by the sorting baseline for large
    block sizes, mirroring the implementation the paper timed.
    """
    if radix_bits <= 0:
        raise ValueError(f"radix_bits must be positive, got {radix_bits}")
    if not values:
        return []
    if any(v < 0 for v in values):
        raise ValueError("radix sort requires nonnegative values")
    out = list(values)
    radix = 1 << radix_bits
    mask = radix - 1
    shift = 0
    max_value = max(out)
    while max_value >> shift:
        counts = [0] * radix
        for v in out:
            counts[(v >> shift) & mask] += 1
        total = 0
        for digit in range(radix):
            counts[digit], total = total, total + counts[digit]
        scratch: list[int] = [0] * len(out)
        for v in out:
            digit = (v >> shift) & mask
            scratch[counts[digit]] = v
            counts[digit] += 1
        out = scratch
        shift += radix_bits
    return out


def sorting_access_table(
    p: int,
    k: int,
    l: int,
    s: int,
    m: int,
    *,
    sort: str = "auto",
) -> AccessTable:
    """Chatterjee et al.'s table construction.

    ``sort`` selects the sorting routine: ``"timsort"`` (Python's
    built-in comparison sort), ``"radix"`` (LSD radix sort), or
    ``"auto"`` (radix when ``k >= RADIX_THRESHOLD``, as in the paper).
    """
    if p <= 0 or k <= 0:
        raise ValueError(f"need p > 0 and k > 0, got p={p}, k={k}")
    if s <= 0:
        raise ValueError(f"stride must be positive, got s={s}")
    if not 0 <= m < p:
        raise ValueError(f"processor number m={m} out of range [0, {p})")
    if sort not in ("auto", "timsort", "radix"):
        raise ValueError(f"unknown sort {sort!r}")

    pk = p * k
    d, x, _ = extended_gcd(s, pk)
    period = pk // d

    # Smallest section element for every solvable offset of processor m
    # (identical to the lattice algorithm's start-location scan, except
    # every solution is retained).
    lo = k * m - l
    first = lo + (-lo) % d
    indices: list[int] = []
    for i in range(first, lo + k, d):
        j = (i // d) * x % period
        indices.append(l + j * s)

    length = len(indices)
    if length == 0:
        return AccessTable(p, k, l, s, m, None, 0, (), ())
    if length == 1:
        return AccessTable(
            p, k, l, s, m, indices[0], 1, (k * s // d,), (pk * s // d,)
        )

    if sort == "radix" or (sort == "auto" and k >= RADIX_THRESHOLD):
        shift = min(indices)
        indices = [v + shift for v in lsd_radix_sort([v - shift for v in indices])]
    else:
        indices.sort()

    # Linear scan: local-memory gaps between consecutive sorted indices,
    # closing the cycle with the first element of the next period (whose
    # local address is start_local + k*s/d).
    def local(idx: int) -> int:
        row, b = divmod(idx, pk)
        return row * k + (b - k * m)

    addrs = [local(idx) for idx in indices]
    gaps = [addrs[t + 1] - addrs[t] for t in range(length - 1)]
    gaps.append(addrs[0] + k * s // d - addrs[-1])
    index_gaps = [indices[t + 1] - indices[t] for t in range(length - 1)]
    index_gaps.append(indices[0] + pk * s // d - indices[-1])
    return AccessTable(
        p, k, l, s, m, indices[0], length, tuple(gaps), tuple(index_gaps)
    )
