"""Baseline algorithms the paper compares against (Sections 2 and 7).

* :mod:`repro.core.baselines.sorting` -- Chatterjee et al. (PPoPP '93):
  ``O(k log k + min(log s, log p))`` via sorting the initial cycle.
* :mod:`repro.core.baselines.special` -- Hiranandani et al. (ICS '94):
  ``O(k)`` but only when ``s mod pk < k``.
* :mod:`repro.core.baselines.naive` -- brute-force enumeration oracle
  used as ground truth by the test suite.
"""

from .naive import enumerate_local_elements, naive_access_table
from .sorting import lsd_radix_sort, sorting_access_table
from .special import SpecialCaseInapplicable, special_access_table

__all__ = [
    "enumerate_local_elements",
    "naive_access_table",
    "sorting_access_table",
    "lsd_radix_sort",
    "special_access_table",
    "SpecialCaseInapplicable",
]
