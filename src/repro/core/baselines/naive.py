"""Brute-force enumeration oracle.

These functions enumerate every element of the section ``A(l:u:s)``
directly and filter by ownership, so they are ``O((u - l) / s)`` instead
of ``O(k)`` -- far too slow for a runtime system but ideal as ground
truth: every fast algorithm in :mod:`repro.core` is tested against them.
"""

from __future__ import annotations

from ..access import AccessTable
from ..euclid import gcd

__all__ = ["enumerate_local_elements", "naive_access_table"]


def _local_address(index: int, p: int, k: int, m: int) -> int:
    row, b = divmod(index, p * k)
    return row * k + (b - k * m)


def enumerate_local_elements(
    p: int, k: int, l: int, u: int, s: int, m: int
) -> list[tuple[int, int]]:
    """All ``(global_index, local_address)`` pairs of ``A(l:u:s)`` owned by
    processor ``m``, in increasing index order.

    Fortran triplet semantics: elements are ``l, l+s, ...`` while
    ``<= u`` (for ``s > 0``) or ``>= u`` (for ``s < 0``; the returned
    order is still the traversal order ``l, l+s, ...``).
    """
    if p <= 0 or k <= 0:
        raise ValueError(f"need p > 0 and k > 0, got p={p}, k={k}")
    if s == 0:
        raise ValueError("stride must be nonzero")
    if not 0 <= m < p:
        raise ValueError(f"processor number m={m} out of range [0, {p})")
    pk = p * k
    lo, hi = k * m, k * (m + 1)
    out = []
    i = l
    while (s > 0 and i <= u) or (s < 0 and i >= u):
        if lo <= i % pk < hi:
            out.append((i, _local_address(i, p, k, m)))
        i += s
    return out


def naive_access_table(p: int, k: int, l: int, s: int, m: int) -> AccessTable:
    """Compute the cyclic ΔM table by plain enumeration (ground truth).

    Enumerates one full period (``pk / gcd(s, pk)`` section steps) past
    the starting location and differences the local addresses.
    """
    if s <= 0:
        raise ValueError(f"stride must be positive, got s={s}")
    pk = p * k
    d = gcd(s, pk)
    period = pk // d
    lo, hi = k * m, k * (m + 1)

    # Scan up to two periods from l to find the start and one full cycle.
    owned: list[int] = []
    for j in range(2 * period + 1):
        idx = l + j * s
        if lo <= idx % pk < hi:
            owned.append(idx)
    if not owned:
        return AccessTable(p, k, l, s, m, None, 0, (), ())
    start = min(owned)
    ordered = sorted(i for i in owned if i >= start)
    # Per period each owned offset appears exactly once; cycle length is
    # the number of distinct offsets.
    length = len({i % pk for i in owned})
    window = ordered[: length + 1]
    addrs = [_local_address(i, p, k, m) for i in window]
    gaps = tuple(addrs[t + 1] - addrs[t] for t in range(length))
    index_gaps = tuple(window[t + 1] - window[t] for t in range(length))
    return AccessTable(p, k, l, s, m, start, length, gaps, index_gaps)
