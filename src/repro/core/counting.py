"""Counting and bound utilities for bounded sections ``A(l:u:s)``.

The access-sequence algorithms deliberately ignore the upper bound ``u``
(the ΔM table is independent of it -- paper Section 2); a runtime system
still needs to know *how many* elements each processor owns and where
its last access lands.  These are O(k) per processor, using the same
per-offset congruence solutions as the start-location scan.
"""

from __future__ import annotations

from .euclid import ceil_div, extended_gcd

__all__ = [
    "local_count",
    "last_location",
    "owner_histogram",
    "local_allocation_size",
    "section_length",
]


def section_length(l: int, u: int, s: int) -> int:
    """Number of elements of the Fortran triplet ``l:u:s``.

    ``max(0, (u - l + s) // s)`` with Fortran semantics; works for
    negative strides too.  Raises on ``s == 0``.
    """
    if s == 0:
        raise ValueError("stride must be nonzero")
    if s > 0:
        return 0 if u < l else (u - l) // s + 1
    return 0 if u > l else (l - u) // (-s) + 1


def _solution_bases(p: int, k: int, l: int, s: int, m: int) -> list[int]:
    """Smallest nonnegative ``j`` per solvable offset of processor ``m``."""
    pk = p * k
    d, x, _ = extended_gcd(s, pk)
    period = pk // d
    lo = k * m - l
    first = lo + (-lo) % d
    return [(i // d) * x % period for i in range(first, lo + k, d)]


def local_count(p: int, k: int, l: int, u: int, s: int, m: int) -> int:
    """Number of elements of ``A(l:u:s)`` owned by processor ``m``.

    O(k): for each solvable offset with smallest step ``j0``, the owned
    steps are ``j0, j0+T, j0+2T, ...`` (``T = pk/gcd(s,pk)``), of which
    ``ceil((n - j0) / T)`` fall below the section length ``n``.
    """
    if s <= 0:
        raise ValueError(f"stride must be positive, got s={s}; normalize first")
    n = section_length(l, u, s)
    if n == 0:
        return 0
    pk = p * k
    d, _, _ = extended_gcd(s, pk)
    period = pk // d
    total = 0
    for j0 in _solution_bases(p, k, l, s, m):
        if j0 < n:
            total += ceil_div(n - j0, period)
    return total


def last_location(p: int, k: int, l: int, u: int, s: int, m: int) -> int | None:
    """Global index of the last element of ``A(l:u:s)`` on processor ``m``,
    or ``None`` when the processor owns no element of the section."""
    if s <= 0:
        raise ValueError(f"stride must be positive, got s={s}; normalize first")
    n = section_length(l, u, s)
    if n == 0:
        return None
    pk = p * k
    d, _, _ = extended_gcd(s, pk)
    period = pk // d
    best: int | None = None
    for j0 in _solution_bases(p, k, l, s, m):
        if j0 < n:
            j_last = j0 + (n - 1 - j0) // period * period
            idx = l + j_last * s
            if best is None or idx > best:
                best = idx
    return best


def owner_histogram(p: int, k: int, l: int, u: int, s: int) -> list[int]:
    """Per-processor element counts for ``A(l:u:s)`` (sums to the section
    length).  O(p*k)."""
    return [local_count(p, k, l, u, s, m) for m in range(p)]


def local_allocation_size(p: int, k: int, n: int, m: int) -> int:
    """Local storage cells processor ``m`` needs for an array of ``n``
    elements distributed ``cyclic(k)`` (full rows contribute ``k`` cells,
    plus the partial last row's share)."""
    if n < 0:
        raise ValueError(f"array size must be nonnegative, got {n}")
    if k <= 0 or p <= 0:
        raise ValueError(f"need p > 0 and k > 0, got p={p}, k={k}")
    if not 0 <= m < p:
        raise ValueError(f"processor number m={m} out of range [0, {p})")
    pk = p * k
    full_rows, rem = divmod(n, pk)
    tail = min(max(rem - k * m, 0), k)
    return full_rows * k + tail
