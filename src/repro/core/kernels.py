"""Vectorized access-sequence kernels: bulk materialization in NumPy.

The paper's output is a tiny periodic object -- a start address plus a
ΔM gap table of length ``<= k`` -- and the O(k) construction is the
whole point.  *Consuming* that object element-at-a-time in Python,
however, buries the linear-time algorithm under O(n) interpreter
overhead.  These kernels expand entire access sequences with closed
NumPy forms so a runtime statement touches the interpreter O(k) times,
not O(n):

* :func:`expand_table` tiles the periodic gap table and ``cumsum``\\ s
  from the start address -- the first ``count`` terms of
  ``a_0 = start, a_{t+1} = a_t + gaps[t mod L]`` as one int64 vector;
* :func:`owners_of` / :func:`local_addresses_of` are the ``cyclic(k)``
  coordinate algebra of :class:`repro.distribution.layout.CyclicLayout`
  applied to whole index vectors (pure divmod arithmetic, fully
  broadcastable), optionally through an affine alignment ``i -> a*i+b``;
* :func:`periodic_rank_of` vectorizes the rank-function lookup of
  :class:`repro.distribution.localize.RankFunction`: the compressed
  array-local slot of every template-local address in one
  ``divmod`` + ``searchsorted`` pass.

Everything here is NumPy-only and layout-algebraic; the periodic tables
themselves still come from the O(k) algorithm in
:mod:`repro.core.access`.
"""

from __future__ import annotations

import numpy as np

from ..obs import ambient

__all__ = [
    "expand_table",
    "owners_of",
    "local_addresses_of",
    "local_slots_of",
    "periodic_rank_of",
    "periodic_floor_rank_of",
]


def expand_table(start: int, gaps, count: int) -> np.ndarray:
    """First ``count`` terms of the periodic-gap sequence, vectorized.

    Equivalent to the scalar recurrence ``a_0 = start;
    a_{t+1} = a_t + gaps[t % len(gaps)]`` -- the expansion idiom of
    :meth:`repro.core.access.AccessTable.local_addresses`,
    :meth:`repro.distribution.localize.LocalizedTable.slots` and
    ``.indices`` -- in O(count) vector operations: tile the gap table,
    exclusive-``cumsum``, add the start.
    """
    ambient().inc("kernels.expand_table")
    if count < 0:
        raise ValueError(f"count must be nonnegative, got {count}")
    if count == 0:
        return np.empty(0, dtype=np.int64)
    gap_arr = np.asarray(gaps, dtype=np.int64)
    if gap_arr.ndim != 1 or gap_arr.size == 0:
        raise ValueError("gap table must be a nonempty 1-D sequence")
    length = gap_arr.size
    out = np.empty(count, dtype=np.int64)
    out[0] = start
    if count == 1:
        return out
    reps = -(-(count - 1) // length)  # ceil((count-1) / length)
    steps = np.tile(gap_arr, reps)[: count - 1]
    np.cumsum(steps, out=steps)
    out[1:] = start + steps
    return out


def _cells_of(indices, a: int, b: int) -> np.ndarray:
    cells = np.asarray(indices, dtype=np.int64)
    if a == 1 and b == 0:
        return cells
    return a * cells + b


def owners_of(indices, p: int, k: int, a: int = 1, b: int = 0) -> np.ndarray:
    """Owning processors of (aligned) global indices under ``cyclic(k)``.

    ``owner(i) = (a*i + b) mod p*k div k`` -- the closed form of
    :meth:`repro.distribution.layout.CyclicLayout.owner` broadcast over
    an index vector.  NumPy's floored ``%``/``//`` match the scalar
    Python semantics for negative cells.
    """
    if p <= 0 or k <= 0:
        raise ValueError(f"need p > 0 and k > 0, got p={p}, k={k}")
    ambient().inc("kernels.owners_of")
    cells = _cells_of(indices, a, b)
    return cells % (p * k) // k


def local_addresses_of(indices, p: int, k: int, a: int = 1, b: int = 0) -> np.ndarray:
    """Template-local addresses of (aligned) global indices.

    ``addr(i) = (cell div p*k) * k + cell mod p*k mod k`` with
    ``cell = a*i + b`` -- the closed form of
    :meth:`repro.distribution.layout.CyclicLayout.local_address`, valid
    on whichever processor owns each element.
    """
    if p <= 0 or k <= 0:
        raise ValueError(f"need p > 0 and k > 0, got p={p}, k={k}")
    ambient().inc("kernels.local_addresses_of")
    cells = _cells_of(indices, a, b)
    rows, offsets = np.divmod(cells, p * k)
    return rows * k + offsets % k


def periodic_rank_of(
    addrs,
    first: int,
    period_span: int,
    cycle_offsets: np.ndarray,
    *,
    strict: bool = True,
) -> np.ndarray:
    """Ranks of template-local addresses within a periodic allocation.

    The vectorized form of
    :meth:`repro.distribution.localize.RankFunction.rank`: with the
    first-cycle relative offsets ``cycle_offsets`` (sorted ascending,
    ``cycle_offsets[0] == 0``) and the period span ``P``,

        rank(addr) = (addr - first) div P * L
                     + position of (addr - first) mod P in cycle_offsets

    With ``strict=True`` a :class:`KeyError` is raised when any address
    holds no allocation point (mirroring the scalar lookup); with
    ``strict=False`` such entries come back as ``-1``.
    """
    offsets = np.asarray(cycle_offsets, dtype=np.int64)
    length = offsets.size
    if length == 0:
        raise ValueError("cycle_offsets must be nonempty")
    ambient().inc("kernels.periodic_rank_of")
    addr_arr = np.asarray(addrs, dtype=np.int64)
    q, r = np.divmod(addr_arr - first, period_span)
    pos = np.searchsorted(offsets, r)
    pos = np.minimum(pos, length - 1)
    valid = offsets[pos] == r
    if strict:
        if not valid.all():
            bad = addr_arr[~valid]
            raise KeyError(
                f"template-local address {int(bad.flat[0])} holds no array element"
            )
        return q * length + pos
    return np.where(valid, q * length + pos, -1)


def periodic_floor_rank_of(
    addrs,
    first: int,
    period_span: int,
    cycle_offsets: np.ndarray,
) -> np.ndarray:
    """Vectorized :meth:`repro.distribution.localize.RankFunction.floor_rank`:
    rank of the last allocation point at or before each address (``-1``
    when the address precedes the first point)."""
    offsets = np.asarray(cycle_offsets, dtype=np.int64)
    length = offsets.size
    if length == 0:
        raise ValueError("cycle_offsets must be nonempty")
    addr_arr = np.asarray(addrs, dtype=np.int64)
    delta = addr_arr - first
    q, r = np.divmod(delta, period_span)
    pos = np.searchsorted(offsets, r, side="right") - 1
    out = q * length + pos
    return np.where(delta < 0, -1, out)


def local_slots_of(
    indices,
    p: int,
    k: int,
    a: int = 1,
    b: int = 0,
    *,
    first: int | None = None,
    period_span: int | None = None,
    cycle_offsets: np.ndarray | None = None,
) -> np.ndarray:
    """Compressed array-local slots of (aligned) global indices.

    For the identity alignment the compressed slot *is* the
    template-local address (the stride-1 allocation occupies every local
    cell), so this is :func:`local_addresses_of`.  For affine alignments
    the caller supplies the allocation rank function's periodic
    structure (``first``, ``period_span``, ``cycle_offsets`` -- see
    :class:`repro.distribution.localize.RankFunction`) and the addresses
    are mapped through :func:`periodic_rank_of`.
    """
    addrs = local_addresses_of(indices, p, k, a, b)
    if a == 1 and b == 0:
        return addrs
    if first is None or period_span is None or cycle_offsets is None:
        raise ValueError(
            "non-identity alignments need the allocation rank structure "
            "(first, period_span, cycle_offsets)"
        )
    return periodic_rank_of(addrs, first, period_span, cycle_offsets)
