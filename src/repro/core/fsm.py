"""The finite-state-machine view of the access sequence (paper Section 2).

Chatterjee et al. "visualize the table containing the offset and memory
gap sequences as the transition diagram of a finite state machine", and
the paper notes the key factoring: *state transitions depend only on
``p``, ``k`` and ``s``*, whereas a processor's start state also depends
on the section lower bound ``l`` and the processor number ``m``.

:class:`AccessFSM` materializes that machine once per ``(p, k, s)``:

* states are all row offsets ``b in [0, p*k)``.  For a section with
  lower bound ``l`` only the residue class ``l mod gcd(s, pk)`` is ever
  reached (consecutive section offsets differ by multiples of ``d``),
  but the transition *function* is class-independent -- which is exactly
  why the machine can be built once and shared across sections;
* ``transition(b)`` gives the next row offset on the *same processor*
  plus the local-memory and global-index gaps, via Theorem 3's three-way
  R/L case analysis (the theorem's proof never uses the residue class,
  only the lattice and the block ranges);
* ``start_state(l, m)`` gives processor ``m``'s entry state.

The per-processor slices of this machine are the Section-6.2
offset-indexed tables (:mod:`repro.core.offsets`); the FSM form is what
a compiler caches when many sections share ``(p, k, s)``.
"""

from __future__ import annotations

from dataclasses import dataclass

from .access import start_location
from .euclid import extended_gcd
from .lattice import compute_rl_basis

__all__ = ["Transition", "AccessFSM"]


@dataclass(frozen=True, slots=True)
class Transition:
    """One FSM edge: from a row offset to the next on the same processor."""

    next_offset: int
    memory_gap: int
    index_gap: int


class AccessFSM:
    """Transition system of the access sequence for ``(p, k, s)``.

    Construction cost: one extended Euclid call, one R/L basis
    computation, and one O(p*k) sweep over the row offsets.
    """

    def __init__(self, p: int, k: int, s: int) -> None:
        if p <= 0 or k <= 0:
            raise ValueError(f"need p > 0 and k > 0, got p={p}, k={k}")
        if s <= 0:
            raise ValueError(f"stride must be positive, got s={s}")
        self.p = p
        self.k = k
        self.s = s
        pk = p * k
        self.pk = pk
        d, _, _ = extended_gcd(s, pk)
        self.d = d
        self._transitions: list[Transition] = []

        period_gap = Transition(0, k * s // d, pk * s // d)
        degenerate = s % pk == 0 or len(range(d, k, d)) == 0
        if degenerate:
            # No lattice point has an offset in (0, k): every per-processor
            # cycle has length <= 1, so each state self-loops after one
            # full period.
            self._transitions = [
                Transition(b, period_gap.memory_gap, period_gap.index_gap)
                for b in range(pk)
            ]
            return

        basis = compute_rl_basis(p, k, s)
        (br, ar), (bl, al) = basis.r.vector, basis.l.vector
        gap_r, idx_r = ar * k + br, basis.r.i * s
        gap_l, idx_l = -(al * k + bl), -basis.l.i * s
        for b in range(pk):
            m = b // k
            hi, lo = k * (m + 1), k * m
            if b + br < hi:
                # Equation 1.
                self._transitions.append(Transition(b + br, gap_r, idx_r))
                continue
            nb = b - bl
            gap, idx = gap_l, idx_l
            if nb < lo:
                # Equation 3.
                nb += br
                gap += gap_r
                idx += idx_r
            self._transitions.append(Transition(nb, gap, idx))

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------

    @property
    def states(self) -> range:
        """All row offsets (state ids)."""
        return range(self.pk)

    def reachable_states(self, l: int) -> list[int]:
        """States a section with lower bound ``l`` can occupy: the
        residue class ``l mod d``."""
        return list(range(l % self.d, self.pk, self.d))

    def transition(self, b: int) -> Transition:
        """The edge leaving row offset ``b``."""
        if not 0 <= b < self.pk:
            raise ValueError(f"offset {b} out of range [0, {self.pk})")
        return self._transitions[b]

    def start_state(self, l: int, m: int) -> int | None:
        """Processor ``m``'s entry state for lower bound ``l`` (``None``
        when the processor owns no section elements)."""
        info = start_location(self.p, self.k, l, self.s, m)
        return None if info.start is None else info.start % self.pk

    def processor_states(self, m: int, l: int = 0) -> list[int]:
        """The reachable states inside processor ``m``'s block range for
        lower bound ``l``."""
        if not 0 <= m < self.p:
            raise ValueError(f"processor {m} out of range [0, {self.p})")
        lo, hi = self.k * m, self.k * (m + 1)
        first = lo + (l % self.d - lo) % self.d
        return list(range(first, hi, self.d))

    def table_for(self, l: int, m: int) -> tuple[int | None, list[int]]:
        """The visit-order ΔM table for processor ``m``: the paper's
        AM array, read off the FSM by following transitions from the
        start state once around the cycle.  Returns ``(start, gaps)``."""
        state = self.start_state(l, m)
        if state is None:
            return None, []
        gaps = []
        b = state
        for _ in range(len(self.processor_states(m, l))):
            tr = self.transition(b)
            gaps.append(tr.memory_gap)
            b = tr.next_offset
        assert b == state, "transitions must cycle through the processor's states"
        return state, gaps

    def render(self, m: int | None = None, l: int = 0) -> str:
        """Text rendering of the transition diagram (one line per
        reachable state of the class ``l mod d``)."""
        states = (
            self.reachable_states(l) if m is None else self.processor_states(m, l)
        )
        lines = [f"AccessFSM(p={self.p}, k={self.k}, s={self.s}): "
                 f"{len(states)} states"]
        for b in states:
            tr = self.transition(b)
            lines.append(
                f"  offset {b:>4} -> {tr.next_offset:<4}  "
                f"gap {tr.memory_gap:>5}  index +{tr.index_gap}"
            )
        return "\n".join(lines)
