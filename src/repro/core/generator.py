"""Table-free address generation from the R/L basis alone (Section 6.2).

The paper points out (citing its companion ICS '95 work) that the
algorithm can be modified to return only the two basis vectors, after
which every processor generates its local addresses *on demand* with
the same two comparisons used in Figure 5 lines 35 and 44 -- trading the
``O(k)`` table memory for a small per-access cost.  This module provides
that generator, both as plain iterators and as a resumable cursor
object, and is benchmarked against the materialized table in ablation
A2 (see DESIGN.md).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator

from .access import start_location
from .euclid import extended_gcd
from .lattice import compute_rl_basis

__all__ = ["RLCursor", "iter_global_indices", "iter_local_addresses"]


@dataclass
class RLCursor:
    """Resumable access-sequence cursor for processor ``m``.

    Holds only O(1) state: the current global index, its row offset, and
    the basis step parameters.  ``advance()`` moves to the next owned
    section element using Theorem 3's three-way case analysis.

    Attributes mirror :class:`repro.core.access.AccessTable` semantics:
    ``index`` is the current global array index, ``local`` the current
    local memory address on processor ``m``.
    """

    p: int
    k: int
    l: int
    s: int
    m: int

    def __post_init__(self) -> None:
        p, k, l, s, m = self.p, self.k, self.l, self.s, self.m
        info = start_location(p, k, l, s, m)
        self.length = info.length
        self.index: int | None = info.start
        pk = p * k
        self._pk = pk
        self._lo = k * m
        self._hi = k * (m + 1)
        d, _, _ = extended_gcd(s, pk)
        self._period_local = k * s // d
        self._period_index = pk * s // d
        if info.length > 1:
            basis = compute_rl_basis(p, k, s)
            (self._br, ar) = basis.r.vector[0], basis.r.vector[1]
            self._ar = ar
            (self._bl, self._al) = basis.l.vector
            self._gap_r = self._ar * k + self._br
            self._gap_l = -(self._al * k + self._bl)
            self._idx_r = basis.r.i * s
            self._idx_l = -basis.l.i * s
        if info.start is not None:
            row, b = divmod(info.start, pk)
            self._offset = b
            self.local: int | None = row * k + (b - self._lo)
        else:
            self._offset = 0
            self.local = None

    @property
    def is_empty(self) -> bool:
        return self.index is None

    def advance(self) -> None:
        """Step to the next owned section element (Theorem 3)."""
        if self.index is None:
            raise RuntimeError("cursor is empty: processor owns no elements")
        if self.length == 1:
            self.index += self._period_index
            self.local += self._period_local
            return
        if self._offset + self._br < self._hi:
            # Equation 1: step R.
            self._offset += self._br
            self.index += self._idx_r
            self.local += self._gap_r
            return
        # Equation 2: step -L ...
        offset = self._offset - self._bl
        index = self.index + self._idx_l
        local = self.local + self._gap_l
        if offset < self._lo:
            # ... Equation 3: adjusted by +R.
            offset += self._br
            index += self._idx_r
            local += self._gap_r
        self._offset, self.index, self.local = offset, index, local


def iter_global_indices(
    p: int, k: int, l: int, s: int, m: int, u: int | None = None
) -> Iterator[int]:
    """Stream the global indices of ``A(l:u:s)`` owned by processor ``m``
    in increasing order, using O(1) memory.

    When ``u`` is ``None`` the stream is unbounded.
    """
    cursor = RLCursor(p, k, l, s, m)
    if cursor.is_empty:
        return
    while u is None or cursor.index <= u:
        yield cursor.index
        cursor.advance()


def iter_local_addresses(
    p: int, k: int, l: int, s: int, m: int, u: int | None = None
) -> Iterator[int]:
    """Stream the local memory addresses corresponding to
    :func:`iter_global_indices`."""
    cursor = RLCursor(p, k, l, s, m)
    if cursor.is_empty:
        return
    while u is None or cursor.index <= u:
        yield cursor.local
        cursor.advance()
