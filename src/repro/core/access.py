"""The linear-time memory-access-sequence algorithm (paper Figure 5).

Given distribution parameters ``(p, k)``, regular-section parameters
``(l, s)`` and a processor number ``m``, compute:

* the **starting location** -- the smallest section element owned by
  processor ``m`` (Chatterjee et al.'s Diophantine method, shared with
  the sorting baseline);
* the **cycle length** -- how many block offsets of processor ``m`` are
  touched per period;
* the **ΔM table** of local-memory gaps between consecutive accesses,
  computed in O(k) by walking the R/L lattice basis (Theorems 2-3)
  instead of sorting the initial cycle.

Total cost: ``O(k + min(log s, log p))``; at most ``2k + 1`` lattice
points are examined (Section 5.1).

The functions here deal with the *identity alignment* case; affine
alignments are handled by :mod:`repro.distribution.localize` via the
two-application scheme the paper describes in Section 2.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator

from .euclid import extended_gcd
from .lattice import LatticePoint, RLBasis, compute_rl_basis

__all__ = [
    "AccessTable",
    "StartInfo",
    "start_location",
    "compute_access_table",
]


def _validate(p: int, k: int, s: int, m: int) -> None:
    if p <= 0:
        raise ValueError(f"number of processors must be positive, got p={p}")
    if k <= 0:
        raise ValueError(f"block size must be positive, got k={k}")
    if s <= 0:
        raise ValueError(
            f"stride must be positive, got s={s}; normalize negative strides "
            "with repro.distribution.section.RegularSection first"
        )
    if not 0 <= m < p:
        raise ValueError(f"processor number m={m} out of range [0, {p})")


@dataclass(frozen=True, slots=True)
class StartInfo:
    """Starting location for one processor (Figure 5 lines 1-11).

    ``start`` is the global array index of the first section element
    owned by the processor, or ``None`` when the processor owns none
    (cycle length 0).  ``length`` is the number of block offsets touched
    per period -- the length of the ΔM table.
    """

    start: int | None
    length: int


def start_location(p: int, k: int, l: int, s: int, m: int) -> StartInfo:
    """Find the first section element of ``A(l::s)`` on processor ``m``.

    Solves the congruences ``s*j ≡ i (mod p*k)`` for each target offset
    displacement ``i in [k*m - l, k*m - l + k)``; solvable equations are
    exactly those with ``d | i`` where ``d = gcd(s, p*k)``, and the
    paper's simplification (visit only multiples of ``d``) is applied so
    the loop body never tests divisibility.
    """
    _validate(p, k, s, m)
    pk = p * k
    d, x, _ = extended_gcd(s, pk)
    period = pk // d
    lo = k * m - l
    # First multiple of d that is >= lo.
    first = lo + (-lo) % d
    start: int | None = None
    length = 0
    for i in range(first, lo + k, d):
        j = (i // d) * x % period
        loc = l + j * s
        if start is None or loc < start:
            start = loc
        length += 1
    return StartInfo(start, length)


@dataclass(frozen=True, slots=True)
class AccessTable:
    """The local memory access sequence for one processor.

    The sequence of local addresses visited by processor ``m`` is::

        addr_0 = start_local
        addr_{t+1} = addr_t + gaps[t % length]

    and the corresponding global indices advance by ``index_gaps``.
    ``gaps`` is the paper's AM table; its entries sum to the per-period
    local span ``k * s / d`` and the index gaps sum to the index period
    ``p*k*s/d``.
    """

    p: int
    k: int
    l: int
    s: int
    m: int
    start: int | None
    length: int
    gaps: tuple[int, ...]
    index_gaps: tuple[int, ...] = field(default=())
    basis: RLBasis | None = None

    @property
    def pk(self) -> int:
        return self.p * self.k

    @property
    def is_empty(self) -> bool:
        return self.length == 0

    @property
    def start_local(self) -> int | None:
        """Local memory address of the starting location."""
        if self.start is None:
            return None
        row, b = divmod(self.start, self.pk)
        return row * self.k + (b - self.k * self.m)

    def local_addresses(self, count: int) -> list[int]:
        """First ``count`` local addresses of the access sequence."""
        if count < 0:
            raise ValueError(f"count must be nonnegative, got {count}")
        if self.is_empty:
            if count:
                raise ValueError("processor owns no section elements")
            return []
        out = []
        addr = self.start_local
        for t in range(count):
            out.append(addr)
            addr += self.gaps[t % self.length]
        return out

    def global_indices(self, count: int) -> list[int]:
        """First ``count`` global array indices of the access sequence."""
        if count < 0:
            raise ValueError(f"count must be nonnegative, got {count}")
        if self.is_empty:
            if count:
                raise ValueError("processor owns no section elements")
            return []
        out = []
        idx = self.start
        for t in range(count):
            out.append(idx)
            idx += self.index_gaps[t % self.length]
        return out

    def local_addresses_array(self, count: int):
        """First ``count`` local addresses as one int64 vector (the
        vectorized form of :meth:`local_addresses`, via
        :func:`repro.core.kernels.expand_table`)."""
        from .kernels import expand_table
        import numpy as np

        if count < 0:
            raise ValueError(f"count must be nonnegative, got {count}")
        if self.is_empty:
            if count:
                raise ValueError("processor owns no section elements")
            return np.empty(0, dtype=np.int64)
        return expand_table(self.start_local, self.gaps, count)

    def global_indices_array(self, count: int):
        """First ``count`` global indices as one int64 vector (the
        vectorized form of :meth:`global_indices`)."""
        from .kernels import expand_table
        import numpy as np

        if count < 0:
            raise ValueError(f"count must be nonnegative, got {count}")
        if self.is_empty:
            if count:
                raise ValueError("processor owns no section elements")
            return np.empty(0, dtype=np.int64)
        return expand_table(self.start, self.index_gaps, count)

    def iter_local_addresses(self) -> Iterator[int]:
        """Endless stream of local addresses (use with an upper bound)."""
        if self.is_empty:
            return
        addr = self.start_local
        t = 0
        while True:
            yield addr
            addr += self.gaps[t % self.length]
            t += 1


def compute_access_table(p: int, k: int, l: int, s: int, m: int) -> AccessTable:
    """Run the full algorithm of Figure 5 and return the ΔM table.

    Complexity ``O(k + min(log s, log p))``: one extended-Euclid call,
    two O(k) scans (start location, initial-cycle min/max) and the O(k)
    basis walk that emits the table.
    """
    _validate(p, k, s, m)
    pk = p * k
    d, x, _ = extended_gcd(s, pk)
    period = pk // d

    info = start_location(p, k, l, s, m)
    start, length = info.start, info.length

    # Special cases (Figure 5 lines 12-18).
    if length == 0:
        return AccessTable(p, k, l, s, m, None, 0, (), ())
    if length == 1:
        # One offset per period: the gap spans a full period, s/d rows of
        # k local cells each.
        return AccessTable(
            p, k, l, s, m, start, 1, (k * s // d,), (pk * s // d,)
        )

    # Basis vectors R and L (Figure 5 lines 19-30), independent of l, m.
    basis = compute_rl_basis(p, k, s)
    (br, ar), (bl, al) = basis.r.vector, basis.l.vector
    ir, il = basis.r.i, basis.l.i

    gap_r = ar * k + br
    gap_l = -(al * k + bl)  # Equation 2 gap (note a_l <= 0, i_l < 0)
    idx_r = ir * s
    idx_l = -il * s

    gaps: list[int] = []
    index_gaps: list[int] = []
    offset = start % pk
    hi = k * (m + 1)
    lo = k * m
    i = 0
    while i < length:
        # Equation 1: repeated R steps stay inside the block range.
        while i < length and offset + br < hi:
            gaps.append(gap_r)
            index_gaps.append(idx_r)
            offset += br
            i += 1
        if i == length:
            break
        # Equation 2: step -L.
        gap = gap_l
        idx = idx_l
        offset -= bl
        if offset < lo:
            # Equation 3: -L overshot below the block; add R back.
            gap += gap_r
            idx += idx_r
            offset += br
        gaps.append(gap)
        index_gaps.append(idx)
        i += 1

    return AccessTable(
        p, k, l, s, m, start, length, tuple(gaps), tuple(index_gaps), basis
    )
